package isa

import (
	"encoding/binary"
	"fmt"
)

// WordSize is the fixed machine-instruction width in bytes. Real
// GT200 mixes 4- and 8-byte forms; we use a uniform 16-byte encoding
// (one control word, one payload word) to keep the container format
// simple while remaining a faithful "binary code" level for the
// CUBIN-generator workflow.
const WordSize = 16

// Bit layout of the control word.
const (
	shiftOp       = 0  // 8 bits
	shiftGuard    = 8  // 4 bits
	shiftGuardNeg = 12 // 1 bit
	shiftDst      = 13 // 8 bits
	shiftPDst     = 21 // 4 bits
	shiftAKind    = 25 // 3 bits
	shiftAIdx     = 28 // 8 bits
	shiftBKind    = 36 // 3 bits
	shiftBIdx     = 39 // 8 bits
	shiftCKind    = 47 // 3 bits
	shiftCIdx     = 50 // 8 bits
	shiftCmp      = 58 // 3 bits
)

func packOperand(o Operand) (kind, idx uint64) {
	switch o.Kind {
	case KindReg:
		return uint64(KindReg), uint64(o.Reg)
	case KindSReg:
		return uint64(KindSReg), uint64(o.SReg)
	case KindImm:
		return uint64(KindImm), 0
	case KindSmem:
		return uint64(KindSmem), 0
	default:
		return uint64(KindNone), 0
	}
}

func unpackOperand(kind, idx uint64) (Operand, error) {
	switch OperandKind(kind) {
	case KindNone:
		return Operand{}, nil
	case KindReg:
		return R(Reg(idx)), nil
	case KindImm:
		return Imm(), nil
	case KindSReg:
		return SR(SReg(idx)), nil
	case KindSmem:
		return Smem(), nil
	}
	return Operand{}, fmt.Errorf("isa: bad operand kind %d", kind)
}

// Encode writes the instruction into dst, which must be at least
// WordSize bytes, and returns WordSize.
func (in Instruction) Encode(dst []byte) int {
	var w uint64
	w |= uint64(in.Op) << shiftOp
	w |= uint64(in.Guard) << shiftGuard
	if in.GuardNeg {
		w |= 1 << shiftGuardNeg
	}
	w |= uint64(in.Dst) << shiftDst
	w |= uint64(in.PDst) << shiftPDst
	k, i := packOperand(in.SrcA)
	w |= k<<shiftAKind | i<<shiftAIdx
	k, i = packOperand(in.SrcB)
	w |= k<<shiftBKind | i<<shiftBIdx
	k, i = packOperand(in.SrcC)
	w |= k<<shiftCKind | i<<shiftCIdx
	w |= uint64(in.Cmp) << shiftCmp
	binary.LittleEndian.PutUint64(dst, w)
	binary.LittleEndian.PutUint32(dst[8:], in.Imm)
	binary.LittleEndian.PutUint32(dst[12:], uint32(in.Target))
	return WordSize
}

// Decode parses one instruction from src (at least WordSize bytes).
func Decode(src []byte) (Instruction, error) {
	if len(src) < WordSize {
		return Instruction{}, fmt.Errorf("isa: short instruction word: %d bytes", len(src))
	}
	w := binary.LittleEndian.Uint64(src)
	in := Instruction{
		Op:       Opcode(w >> shiftOp),
		Guard:    Pred(w >> shiftGuard & 0xf),
		GuardNeg: w>>shiftGuardNeg&1 == 1,
		Dst:      Reg(w >> shiftDst & 0xff),
		PDst:     Pred(w >> shiftPDst & 0xf),
		Cmp:      CmpOp(w >> shiftCmp & 0x7),
		Imm:      binary.LittleEndian.Uint32(src[8:]),
		Target:   int32(binary.LittleEndian.Uint32(src[12:])),
	}
	var err error
	if in.SrcA, err = unpackOperand(w>>shiftAKind&7, w>>shiftAIdx&0xff); err != nil {
		return Instruction{}, err
	}
	if in.SrcB, err = unpackOperand(w>>shiftBKind&7, w>>shiftBIdx&0xff); err != nil {
		return Instruction{}, err
	}
	if in.SrcC, err = unpackOperand(w>>shiftCKind&7, w>>shiftCIdx&0xff); err != nil {
		return Instruction{}, err
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, err
	}
	return in, nil
}

// EncodeProgram serializes all instructions of p back-to-back.
func EncodeProgram(p *Program) []byte {
	buf := make([]byte, len(p.Code)*WordSize)
	for i, in := range p.Code {
		in.Encode(buf[i*WordSize:])
	}
	return buf
}

// DecodeProgram parses a back-to-back instruction stream.
func DecodeProgram(raw []byte) ([]Instruction, error) {
	if len(raw)%WordSize != 0 {
		return nil, fmt.Errorf("isa: code size %d not a multiple of %d", len(raw), WordSize)
	}
	code := make([]Instruction, len(raw)/WordSize)
	for i := range code {
		in, err := Decode(raw[i*WordSize:])
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		code[i] = in
	}
	return code, nil
}
