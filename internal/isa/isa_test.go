package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassOfTable1(t *testing.T) {
	// Paper Table 1: mul is Type I; mov/add/mad Type II;
	// sin/cos/log/rcp Type III; double precision Type IV.
	cases := []struct {
		op   Opcode
		want Class
	}{
		{OpFMUL, ClassI},
		{OpIMUL, ClassI},
		{OpMOV, ClassII},
		{OpFADD, ClassII},
		{OpFMAD, ClassII},
		{OpIADD, ClassII},
		{OpSIN, ClassIII},
		{OpCOS, ClassIII},
		{OpLG2, ClassIII},
		{OpRCP, ClassIII},
		{OpDADD, ClassIV},
		{OpDMUL, ClassIV},
		{OpDFMA, ClassIV},
		// Memory and control issue like plain Type II instructions.
		{OpGLD, ClassII},
		{OpSST, ClassII},
		{OpBRA, ClassII},
		{OpBAR, ClassII},
	}
	for _, c := range cases {
		if got := ClassOf(c.op); got != c.want {
			t.Errorf("ClassOf(%s) = %s, want %s", c.op, got, c.want)
		}
	}
}

func TestClassUnits(t *testing.T) {
	// Table 1 unit counts: 10, 8, 4, 1.
	want := map[Class]int{ClassI: 10, ClassII: 8, ClassIII: 4, ClassIV: 1}
	for c, u := range want {
		if got := c.Units(); got != u {
			t.Errorf("%s.Units() = %d, want %d", c, got, u)
		}
	}
}

func TestEveryOpcodeHasNameAndClass(t *testing.T) {
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		if op.String() == "" || op.String()[0] == 'o' && op.String()[1] == 'p' {
			t.Errorf("opcode %d has no name", op)
		}
		if c := ClassOf(op); c >= NumClasses {
			t.Errorf("opcode %s has invalid class %d", op, c)
		}
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !IsMemory(OpGLD) || !IsMemory(OpSST) || IsMemory(OpMOV) {
		t.Error("IsMemory misclassifies")
	}
	if !IsGlobal(OpGST) || IsGlobal(OpSLD) {
		t.Error("IsGlobal misclassifies")
	}
	if !IsShared(OpSLD) || IsShared(OpGLD) {
		t.Error("IsShared misclassifies")
	}
	if !IsControl(OpBAR) || !IsControl(OpEXIT) || IsControl(OpIADD) {
		t.Error("IsControl misclassifies")
	}
	if !WritesPredicate(OpISETP) || WritesPredicate(OpIADD) {
		t.Error("WritesPredicate misclassifies")
	}
}

func TestInstructionValidate(t *testing.T) {
	good := Instruction{Op: OpFMAD, Guard: PT, Dst: 3, SrcA: R(1), SrcB: R(2), SrcC: R(3)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid instruction rejected: %v", err)
	}
	bad := []Instruction{
		{Op: Opcode(200), Guard: PT},
		{Op: OpISETP, Guard: PT, PDst: 9},
		{Op: OpMOV, Guard: Pred(9)},
		{Op: OpDADD, Guard: PT, Dst: NumRegs - 1, SrcA: R(0), SrcB: R(2)},
		{Op: OpMOV, Guard: PT, SrcA: Operand{Kind: OperandKind(7)}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad instruction %d accepted: %v", i, in)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	p := &Program{
		Name: "t",
		Code: []Instruction{
			{Op: OpMOV, Guard: PT, Dst: 5, SrcA: Imm(), Imm: 42},
			{Op: OpEXIT, Guard: PT},
		},
		RegsPerThread: 6,
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	noExit := &Program{Name: "noexit", Code: []Instruction{{Op: OpNOP, Guard: PT}}}
	if err := noExit.Validate(); err == nil {
		t.Error("program without exit accepted")
	}

	badTarget := &Program{
		Name:          "badtarget",
		Code:          []Instruction{{Op: OpBRA, Guard: PT, Target: 99}, {Op: OpEXIT, Guard: PT}},
		RegsPerThread: 0,
	}
	if err := badTarget.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}

	underDeclared := &Program{
		Name:          "under",
		Code:          []Instruction{{Op: OpMOV, Guard: PT, Dst: 10, SrcA: R(2)}, {Op: OpEXIT, Guard: PT}},
		RegsPerThread: 4,
	}
	if err := underDeclared.Validate(); err == nil {
		t.Error("under-declared register usage accepted")
	}

	empty := &Program{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("empty program accepted")
	}
}

func TestStaticStats(t *testing.T) {
	p := &Program{
		Name: "stats",
		Code: []Instruction{
			{Op: OpFMUL, Guard: PT, Dst: 0, SrcA: R(1), SrcB: R(2)},
			{Op: OpFMAD, Guard: PT, Dst: 0, SrcA: R(1), SrcB: R(2), SrcC: R(0)},
			{Op: OpSIN, Guard: PT, Dst: 3, SrcA: R(1)},
			{Op: OpDMUL, Guard: PT, Dst: 4, SrcA: R(1), SrcB: R(2)},
			{Op: OpSLD, Guard: PT, Dst: 6, SrcA: R(1)},
			{Op: OpGST, Guard: PT, SrcA: R(1), SrcB: R(2)},
			{Op: OpBAR, Guard: PT},
			{Op: OpEXIT, Guard: PT},
		},
		RegsPerThread: 7,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.StaticStats()
	if s.Total != 8 {
		t.Errorf("Total = %d, want 8", s.Total)
	}
	if s.ByClass[ClassI] != 1 || s.ByClass[ClassIII] != 1 || s.ByClass[ClassIV] != 1 {
		t.Errorf("ByClass = %v", s.ByClass)
	}
	if s.ByClass[ClassII] != 5 {
		t.Errorf("ClassII = %d, want 5", s.ByClass[ClassII])
	}
	if s.SharedOps != 1 || s.GlobalOps != 1 || s.ControlOps != 2 {
		t.Errorf("mem/control = %d/%d/%d", s.SharedOps, s.GlobalOps, s.ControlOps)
	}
}

// randomInstruction builds a structurally valid random instruction
// for round-trip properties.
func randomInstruction(rng *rand.Rand) Instruction {
	in := Instruction{
		Op:     Opcode(rng.Intn(NumOpcodes)),
		Guard:  Pred(rng.Intn(NumPreds + 1)),
		Dst:    Reg(rng.Intn(NumRegs - 1)), // leave room for double pairs
		PDst:   Pred(rng.Intn(NumPreds)),
		Cmp:    CmpOp(rng.Intn(NumCmps)),
		Imm:    rng.Uint32(),
		Target: int32(rng.Intn(1024)),
	}
	if in.Guard == Pred(NumPreds) {
		in.Guard = PT
	}
	in.GuardNeg = in.Guard != PT && rng.Intn(2) == 0
	if IsMemory(in.Op) {
		// Memory ops: register address (+Imm offset), register value.
		in.SrcA = R(Reg(rng.Intn(NumRegs)))
		if in.Op == OpGST || in.Op == OpSST {
			in.SrcB = R(Reg(rng.Intn(NumRegs)))
		}
		return in
	}
	ops := []*Operand{&in.SrcA, &in.SrcB, &in.SrcC}
	useSmem := rng.Intn(5) == 0 && !IsControl(in.Op)
	for i, o := range ops {
		switch rng.Intn(4) {
		case 0:
			*o = Operand{}
		case 1:
			*o = R(Reg(rng.Intn(NumRegs)))
		case 2:
			if useSmem {
				*o = R(Reg(rng.Intn(NumRegs))) // Imm slot taken by smem
			} else {
				*o = Imm()
			}
		case 3:
			*o = SR(SReg(rng.Intn(NumSRegs)))
		}
		if useSmem && i == 1 {
			*o = Smem()
		}
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		_ = seed
		in := randomInstruction(rng)
		var buf [WordSize]byte
		in.Encode(buf[:])
		out, err := Decode(buf[:])
		if err != nil {
			t.Logf("decode error for %v: %v", in, err)
			return false
		}
		return in == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 3)); err == nil {
		t.Error("short buffer accepted")
	}
	var buf [WordSize]byte
	(Instruction{Op: Opcode(250), Guard: PT}).Encode(buf[:])
	if _, err := Decode(buf[:]); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestEncodeProgramRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	code := make([]Instruction, 64)
	for i := range code {
		code[i] = randomInstruction(rng)
	}
	p := &Program{Name: "rt", Code: code, RegsPerThread: NumRegs}
	raw := EncodeProgram(p)
	if len(raw) != len(code)*WordSize {
		t.Fatalf("encoded size %d", len(raw))
	}
	got, err := DecodeProgram(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range code {
		if code[i] != got[i] {
			t.Fatalf("instruction %d mismatch: %v vs %v", i, code[i], got[i])
		}
	}
	if _, err := DecodeProgram(raw[:len(raw)-5]); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestInstructionString(t *testing.T) {
	in := Instruction{Op: OpFMAD, Guard: P1, GuardNeg: true, Dst: 2, SrcA: R(3), SrcB: Imm(), Imm: 0x10, SrcC: R(2)}
	got := in.String()
	want := "@!p1 fmad r2, r3, 0x10, r2"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	bra := Instruction{Op: OpBRA, Guard: P0, Target: 7}
	if got := bra.String(); got != "@p0 bra @7" {
		t.Errorf("String() = %q", got)
	}
}
