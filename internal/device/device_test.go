package device

import (
	"context"
	"errors"
	"strings"
	"testing"

	"gpuperf/internal/barra"
	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
)

// chainKernel: a straight-line dependent chain of n instructions of
// the given op — the instruction-pipeline microbenchmark shape
// (straight-line so loop bookkeeping does not dilute the measured
// class, exactly why the paper generates binaries directly).
func chainKernel(op isa.Opcode, n int) *isa.Program {
	b := kbuild.New("chain")
	x := b.Reg()
	if isa.IsDouble(op) {
		x = b.RegPair()
	}
	b.MovF(x, 1.0)
	for i := 0; i < n; i++ {
		switch {
		case op == isa.OpFMAD:
			b.FMad(x, x, x, x)
		case op == isa.OpFMUL:
			b.FMul(x, x, x)
		case isa.ClassOf(op) == isa.ClassIII:
			b.Unary(op, x, x)
		case op == isa.OpDFMA:
			b.DFma(x, x, x, x)
		default:
			b.FAdd(x, x, x)
		}
	}
	b.Exit()
	return b.MustProgram()
}

// smallGPU is a 3-SM (one cluster) GTX 285 slice: per-SM behaviour
// is identical and tests run 10x faster. Peak helpers scale with the
// SM count, so throughput comparisons stay valid.
func smallGPU() gpu.Config {
	c := gpu.GTX285()
	c.NumSMs = 3
	return c
}

func launchWarps(t *testing.T, cfg gpu.Config, prog *isa.Program, warpsPerSM int) Result {
	t.Helper()
	// One block per SM with warpsPerSM warps (≤16 per block on CC
	// 1.3 would need 512 threads; warpsPerSM ≤ 16 here).
	l := barra.Launch{Prog: prog, Grid: cfg.NumSMs, Block: warpsPerSM * gpu.WarpSize}
	mem := barra.NewMemory(1 << 16)
	r, err := Run(cfg, l, mem)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestInstructionThroughputSaturation reproduces the shape of paper
// Fig. 2 (left) for Type II: throughput grows with warp count and
// saturates around 6 warps near the theoretical peak.
func TestInstructionThroughputSaturation(t *testing.T) {
	cfg := smallGPU()
	prog := chainKernel(isa.OpFMAD, 512)
	var tp [17]float64
	for w := 1; w <= 16; w *= 2 {
		r := launchWarps(t, cfg, prog, w)
		tp[w] = r.InstrThroughput()
	}
	if !(tp[1] < tp[2] && tp[2] < tp[4]) {
		t.Errorf("throughput not increasing: 1w=%.2g 2w=%.2g 4w=%.2g", tp[1], tp[2], tp[4])
	}
	peak := cfg.PeakInstrThroughput(8)
	if tp[8] < 0.7*peak {
		t.Errorf("8 warps = %.3g instr/s, want ≥70%% of peak %.3g", tp[8], peak)
	}
	if tp[16] > 1.02*peak {
		t.Errorf("16 warps = %.3g exceeds peak %.3g", tp[16], peak)
	}
	// 1 warp is latency-bound at roughly occ/latency of peak.
	if tp[1] > 0.4*peak {
		t.Errorf("1 warp suspiciously fast: %.3g vs peak %.3g", tp[1], peak)
	}
}

// TestClassThroughputOrdering: at saturation, class throughput
// follows Table 1's unit counts.
func TestClassThroughputOrdering(t *testing.T) {
	cfg := smallGPU()
	ops := []struct {
		op   isa.Opcode
		frac float64 // expected peak fraction of class units
	}{
		{isa.OpFMUL, 10.0 / 8}, // relative to ClassII peak
		{isa.OpFMAD, 1},
		{isa.OpSIN, 4.0 / 8},
		{isa.OpDFMA, 1.0 / 8},
	}
	base := 0.0
	var got []float64
	for _, o := range ops {
		// The loop overhead (3 ClassII instructions per iteration)
		// dilutes pure-op throughput; use the per-class issue count.
		r := launchWarps(t, cfg, chainKernel(o.op, 256), 12)
		cls := isa.ClassOf(o.op)
		classInstr := float64(r.ByClass[cls])
		tp := classInstr / r.Seconds
		got = append(got, tp)
		if o.op == isa.OpFMAD {
			base = tp
		}
	}
	_ = base
	if !(got[0] > got[1] && got[1] > got[2] && got[2] > got[3]) {
		t.Errorf("class throughput ordering violated: %v", got)
	}
}

// smemKernel: each thread copies words between shared regions —
// the shared-memory microbenchmark shape. The copy pairs are
// unrolled so bookkeeping does not throttle the memory pipeline.
func smemKernel(iters uint32, strideWords uint32) *isa.Program {
	const unroll = 16
	b := kbuild.New("smemcopy")
	b.SharedBytes(16 * 1024)
	tid := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	ctr := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.IMulImm(addr, tid, 4*strideWords)
	b.AndImm(addr, addr, 8191) // stay in the first 8 KB
	b.Loop(ctr, iters, func() {
		for i := 0; i < unroll; i++ {
			b.Sld(v, addr)
			b.Sst(addr, v)
		}
	})
	b.Exit()
	return b.MustProgram()
}

// TestSharedBandwidthSaturation reproduces Fig. 2 (right): bandwidth
// rises with warps and approaches ~80% of the 1420 GB/s peak.
func TestSharedBandwidthSaturation(t *testing.T) {
	cfg := smallGPU()
	prog := smemKernel(60, 1)
	var bw [17]float64
	for w := 1; w <= 16; w *= 2 {
		r := launchWarps(t, cfg, prog, w)
		bw[w] = r.SharedBandwidth() / 1e9
	}
	if !(bw[1] < bw[2] && bw[2] < bw[4] && bw[4] < bw[8]) {
		t.Errorf("shared bandwidth not rising: %v", bw)
	}
	peak := cfg.PeakSharedBandwidth() / 1e9
	if bw[16] < 0.5*peak {
		t.Errorf("16 warps: %.0f GB/s, want ≥50%% of %.0f", bw[16], peak)
	}
	if bw[16] > peak*1.01 {
		t.Errorf("16 warps: %.0f GB/s exceeds peak %.0f", bw[16], peak)
	}
	// Shared memory needs more warps than the ALU to saturate:
	// at 4 warps it should still be clearly below 90% of its
	// 16-warp value.
	if bw[4] > 0.9*bw[16] {
		t.Errorf("shared memory saturates too early: 4w=%.0f vs 16w=%.0f", bw[4], bw[16])
	}
}

// TestBankConflictsSlowSharedMemory: a stride-8 copy (8-way
// conflicts) must deliver roughly 1/8 the conflict-free bandwidth.
func TestBankConflictsSlowSharedMemory(t *testing.T) {
	cfg := smallGPU()
	free := launchWarps(t, cfg, smemKernel(50, 1), 8)
	conf := launchWarps(t, cfg, smemKernel(50, 8), 8)
	ratio := free.SharedBandwidth() / conf.SharedBandwidth()
	if ratio < 5 || ratio > 11 {
		t.Errorf("8-way conflict slowdown = %.1fx, want ≈8x", ratio)
	}
}

// gmemKernel: each thread streams transPerThread independent
// coalesced loads — the global-memory synthetic benchmark shape.
// Loads are independent (no consumer), as in a bandwidth benchmark.
func gmemKernel(transPerThread uint32) *isa.Program {
	const unroll = 4
	b := kbuild.New("gstream")
	tid := b.Reg()
	ntid := b.Reg()
	cta := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	ctr := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.S2R(ntid, isa.SRNtid)
	b.S2R(cta, isa.SRCtaid)
	b.IMad(addr, cta, ntid, tid)
	b.ShlImm(addr, addr, 2)
	iters := transPerThread / unroll
	if iters == 0 {
		iters = 1
	}
	b.Loop(ctr, iters, func() {
		for i := 0; i < unroll; i++ {
			b.AndImm(addr, addr, (1<<22)-1)
			b.Gld(v, addr)
			b.IAddImm(addr, addr, 512*4) // stride past the warp front
		}
	})
	b.Exit()
	return b.MustProgram()
}

// TestGlobalBandwidthScaling reproduces Fig. 3's qualitative shape:
// bandwidth grows with block count and saturates below the
// theoretical peak; more transactions per thread saturate earlier.
func TestGlobalBandwidthScaling(t *testing.T) {
	cfg := gpu.GTX285()
	prog := gmemKernel(32)
	mem := barra.NewMemory(1 << 22)
	bwAt := func(blocks int) float64 {
		r, err := Run(cfg, barra.Launch{Prog: prog, Grid: blocks, Block: 128}, mem)
		if err != nil {
			t.Fatal(err)
		}
		return r.GlobalBandwidth() / 1e9
	}
	b1, b10, b60 := bwAt(1), bwAt(10), bwAt(60)
	peak := cfg.PeakGlobalBandwidth() / 1e9
	if !(b1 < b10 && b10 < b60*1.2) {
		t.Errorf("global bandwidth not rising: 1=%.1f 10=%.1f 60=%.1f", b1, b10, b60)
	}
	if b60 < 0.5*peak || b60 > peak*1.001 {
		t.Errorf("60 blocks: %.1f GB/s vs peak %.1f", b60, peak)
	}
}

// TestClusterSawtooth: 31 blocks load one cluster with an extra
// block, so 40 blocks (a multiple of 10 clusters... 40 = 4 waves of
// 10) finish disproportionately faster than 31.
func TestClusterSawtooth(t *testing.T) {
	cfg := gpu.GTX285()
	prog := gmemKernel(96)
	mem := barra.NewMemory(1 << 22)
	timeAt := func(blocks int) float64 {
		r, err := Run(cfg, barra.Launch{Prog: prog, Grid: blocks, Block: 256}, mem)
		if err != nil {
			t.Fatal(err)
		}
		return r.Seconds
	}
	t30, t31 := timeAt(30), timeAt(31)
	// One leftover block forces a second wave on one SM: the run
	// gets measurably longer even though work grew only 3%.
	if t31 < t30*1.2 {
		t.Errorf("no leftover-block penalty: 30 blocks %.3gs, 31 blocks %.3gs", t30, t31)
	}
}

// TestDominantComponent: a pure-ALU kernel is instruction-bound; a
// streaming kernel is global-bound; a conflicted shared kernel is
// shared-bound.
func TestDominantComponent(t *testing.T) {
	cfg := smallGPU()
	alu := launchWarps(t, cfg, chainKernel(isa.OpFMAD, 256), 8)
	if alu.DominantComponent() != "instruction" {
		t.Errorf("ALU kernel dominated by %s", alu.DominantComponent())
	}
	sh := launchWarps(t, cfg, smemKernel(50, 8), 8)
	if sh.DominantComponent() != "shared" {
		t.Errorf("conflicted shared kernel dominated by %s", sh.DominantComponent())
	}
	// Global dominance needs the real SM:cluster ratio (the 3-SM
	// slice keeps the full DRAM, so nothing can be memory-bound on
	// it); use the full chip with a small per-thread load count.
	mem := barra.NewMemory(1 << 22)
	r, err := Run(gpu.GTX285(), barra.Launch{Prog: gmemKernel(32), Grid: 60, Block: 128}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if r.DominantComponent() != "global" {
		t.Errorf("streaming kernel dominated by %s", r.DominantComponent())
	}
}

// TestDeterminism: identical runs give identical cycle counts.
func TestDeterminism(t *testing.T) {
	cfg := gpu.GTX285()
	prog := smemKernel(20, 2)
	l := barra.Launch{Prog: prog, Grid: 45, Block: 128}
	r1, err := Run(cfg, l, barra.NewMemory(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, l, barra.NewMemory(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.WarpInstrs != r2.WarpInstrs {
		t.Errorf("non-deterministic: %v vs %v cycles", r1.Cycles, r2.Cycles)
	}
}

// TestBarrierSerializesStages: with one block per SM, time with a
// barrier between two chains is at least the sum of the parts.
func TestBarrierSerializesStages(t *testing.T) {
	cfg := gpu.GTX285()
	mk := func(withBar bool) *isa.Program {
		b := kbuild.New("bar")
		x := b.Reg()
		ctr := b.Reg()
		b.MovF(x, 1)
		b.Loop(ctr, 100, func() { b.FMad(x, x, x, x) })
		if withBar {
			b.Bar()
		}
		ctr2 := b.Reg()
		b.Loop(ctr2, 100, func() { b.FMad(x, x, x, x) })
		b.Exit()
		return b.MustProgram()
	}
	mem := barra.NewMemory(1 << 12)
	rNo, err := Run(cfg, barra.Launch{Prog: mk(false), Grid: 30, Block: 64}, mem)
	if err != nil {
		t.Fatal(err)
	}
	rBar, err := Run(cfg, barra.Launch{Prog: mk(true), Grid: 30, Block: 64}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if rBar.Cycles < rNo.Cycles {
		t.Errorf("barrier made kernel faster: %v vs %v", rBar.Cycles, rNo.Cycles)
	}
}

// TestRunContextCancelled: the event loop observes a dead context
// and aborts instead of simulating to completion.
func TestRunContextCancelled(t *testing.T) {
	prog := chainKernel(isa.OpFMAD, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, gpu.GTX285(), barra.Launch{Prog: prog, Grid: 30, Block: 256}, barra.NewMemory(4096))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := gpu.GTX285()
	prog := chainKernel(isa.OpFMAD, 4)
	if _, err := Run(cfg, barra.Launch{Prog: prog, Grid: 0, Block: 32}, barra.NewMemory(64)); err == nil {
		t.Error("bad launch accepted")
	}
	if _, err := Run(cfg, barra.Launch{Prog: prog, Grid: 1, Block: 32}, nil); err == nil {
		t.Error("nil memory accepted")
	}
	bad := cfg
	bad.NumSMs = 0
	if _, err := Run(bad, barra.Launch{Prog: prog, Grid: 1, Block: 32}, barra.NewMemory(64)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunBudgetStopsRunaway(t *testing.T) {
	b := kbuild.New("forever")
	br := b.Bra()
	b.SetTarget(br, 0)
	b.Exit()
	_, err := RunBudget(gpu.GTX285(), barra.Launch{Prog: b.MustProgram(), Grid: 1, Block: 32},
		barra.NewMemory(64), 5000)
	if err == nil {
		t.Fatal("runaway kernel not stopped")
	}
}

// TestEarlyReleaseHelpsTailHeavyKernels: a kernel whose warps finish
// at very different times benefits when blocks release resources
// early (the paper's §5.2 block-scheduling improvement).
func TestEarlyReleaseHelpsTailHeavyKernels(t *testing.T) {
	// One warp runs a long chain; the other 3 exit immediately.
	b := kbuild.New("tail")
	b.SharedBytes(9000) // one block per SM
	tid := b.Reg()
	x := b.Reg()
	ctr := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.ISetpImm(isa.P0, isa.CmpGE, tid, 32)
	skip := b.BraIf(isa.P0, false)
	b.MovF(x, 1)
	b.Loop(ctr, 200, func() { b.FMad(x, x, x, x) })
	end := b.Pos()
	b.SetTarget(skip, end)
	b.Exit()
	prog := b.MustProgram()

	cfg := smallGPU()
	l := barra.Launch{Prog: prog, Grid: 12, Block: 128}
	base, err := Run(cfg, l, barra.NewMemory(64))
	if err != nil {
		t.Fatal(err)
	}
	early := cfg
	early.EarlyRelease = true
	fast, err := Run(early, l, barra.NewMemory(64))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles > base.Cycles {
		t.Errorf("early release slower: %v vs %v cycles", fast.Cycles, base.Cycles)
	}
}

// TestStoreHeavyKernelAccountsBandwidth: global stores consume
// cluster bandwidth without blocking the warp.
func TestStoreHeavyKernelAccountsBandwidth(t *testing.T) {
	b := kbuild.New("stores")
	tid := b.Reg()
	ntid := b.Reg()
	cta := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	ctr := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.S2R(ntid, isa.SRNtid)
	b.S2R(cta, isa.SRCtaid)
	b.IMad(addr, cta, ntid, tid)
	b.ShlImm(addr, addr, 2)
	b.MovImm(v, 7)
	b.Loop(ctr, 16, func() {
		b.AndImm(addr, addr, (1<<20)-1)
		b.Gst(addr, v)
		b.IAddImm(addr, addr, 512*4)
	})
	b.Exit()
	r, err := Run(gpu.GTX285(), barra.Launch{Prog: b.MustProgram(), Grid: 30, Block: 128}, barra.NewMemory(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(30 * 128 * 16 * 4) // fully coalesced
	if r.GlobalBytes != wantBytes {
		t.Errorf("store traffic %d bytes, want %d", r.GlobalBytes, wantBytes)
	}
	if r.BusyGlobal <= 0 {
		t.Error("stores consumed no global bandwidth")
	}
}

// TestDispatchRefill: with more blocks than resident slots, all
// blocks complete and later blocks extend the runtime roughly
// linearly.
func TestDispatchRefill(t *testing.T) {
	cfg := smallGPU()
	prog := chainKernel(isa.OpFMAD, 128)
	timeFor := func(grid int) float64 {
		r, err := Run(cfg, barra.Launch{Prog: prog, Grid: grid, Block: 512}, barra.NewMemory(64))
		if err != nil {
			t.Fatal(err)
		}
		if got := int(r.WarpInstrs) / 16 / 130; got != grid {
			t.Fatalf("grid %d: executed %d block-equivalents", grid, got)
		}
		return r.Seconds
	}
	// Block = 512 threads → occupancy 2 blocks/SM on 3 SMs = 6
	// resident; 18 blocks = 3 sequential waves.
	oneWave := timeFor(6)
	threeWaves := timeFor(18)
	if threeWaves < 2.4*oneWave || threeWaves > 3.6*oneWave {
		t.Errorf("3 waves took %.3gx one wave, want ≈3x", threeWaves/oneWave)
	}
}

// TestSmemOperandTiming: MAD with a shared-memory operand charges
// the shared pipeline (BusyShared > 0) even with no explicit loads.
func TestSmemOperandTiming(t *testing.T) {
	b := kbuild.New("smemop")
	b.SharedBytes(64)
	x := b.Reg()
	addr := b.Reg()
	b.MovF(x, 2)
	b.MovImm(addr, 0)
	b.Sst(addr, x)
	for i := 0; i < 32; i++ {
		b.FMadS(x, x, 0, x)
	}
	b.Exit()
	r, err := Run(smallGPU(), barra.Launch{Prog: b.MustProgram(), Grid: 3, Block: 64}, barra.NewMemory(64))
	if err != nil {
		t.Fatal(err)
	}
	// 1 store + 32 operand reads per warp, 2 half-warps each.
	if r.BusyShared < float64(3*2*33*2*2)*0.9 {
		t.Errorf("BusyShared = %v, want ≈%v", r.BusyShared, 3*2*33*2*2)
	}
}

func TestUtilizationAndReport(t *testing.T) {
	r := launchWarps(t, smallGPU(), chainKernel(isa.OpFMAD, 256), 8)
	i, s, g := r.Utilization()
	if i < 0.5 || i > 1.0 {
		t.Errorf("ALU utilization = %v, want high", i)
	}
	if s != 0 || g != 0 {
		t.Errorf("memory utilization nonzero for pure-ALU kernel: %v %v", s, g)
	}
	rep := r.Report()
	for _, want := range []string{"time", "utilization", "instruction-dominated", "occupancy"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	var zero Result
	if i, s, g := zero.Utilization(); i != 0 || s != 0 || g != 0 {
		t.Error("zero result has nonzero utilization")
	}
}
