// Package device is the cycle-approximate timing simulator — this
// reproduction's stand-in for the physical GTX 285. Every experiment's
// "measured" number comes from here.
//
// The simulator executes kernels functionally (through the barra
// warp executor, so memory addresses and control flow are real) and
// attaches timing through a small set of structural mechanisms, each
// of which corresponds to a phenomenon the paper's model captures:
//
//   - per-SM functional-unit servers per instruction class, with
//     occupancy warpSize/units(class) shader cycles per warp
//     instruction → the four Table 1 throughput tiers;
//   - a register scoreboard plus class-dependent pipeline latency →
//     throughput that climbs with warp count and saturates around 6
//     warps for Type II instructions (paper Fig. 2 left);
//   - a per-SM shared-memory pipeline whose occupancy scales with
//     the serialized (bank-conflict) transaction count and whose
//     latency exceeds the ALU's → Fig. 2 right and the cyclic-
//     reduction slowdown;
//   - per-cluster global-memory pipelines (3 SMs share one) with a
//     fixed round-trip latency and a bandwidth-limited service rate
//     → Fig. 3's saturation curve and its period-10 sawtooth;
//   - block dispatch onto SMs constrained by occupancy, with
//     round-robin initial placement and refill on completion.
package device

import (
	"container/heap"
	"context"
	"fmt"

	"gpuperf/internal/bank"
	"gpuperf/internal/barra"
	"gpuperf/internal/coalesce"
	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
	"gpuperf/internal/occupancy"
)

// Result is the outcome of a timed run.
type Result struct {
	// Cycles is the total execution time in shader cycles; Seconds
	// converts by the core clock.
	Cycles  float64
	Seconds float64

	// WarpInstrs is the number of warp instructions issued, split
	// by class in ByClass.
	WarpInstrs int64
	ByClass    [isa.NumClasses]int64

	// SharedBytes / GlobalBytes are the bytes moved (global at the
	// device's transaction granularity, i.e. including coalescing
	// overfetch).
	SharedBytes int64
	GlobalBytes int64
	// GlobalTransactions is the hardware transaction count.
	GlobalTransactions int64

	// BusyInstr, BusyShared, BusyGlobal are server busy-cycle sums
	// (across SMs / clusters), used to identify the observed
	// dominant component. NumSMs/NumClusters record the server
	// counts needed to normalize them into utilizations.
	BusyInstr   float64
	BusyShared  float64
	BusyGlobal  float64
	NumSMs      int
	NumClusters int

	// Occupancy echoes the resident-block computation used for
	// dispatch.
	Occupancy occupancy.Result
}

// InstrThroughput returns achieved warp-instructions per second.
func (r Result) InstrThroughput() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.WarpInstrs) / r.Seconds
}

// SharedBandwidth returns achieved shared-memory bytes per second.
func (r Result) SharedBandwidth() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.SharedBytes) / r.Seconds
}

// GlobalBandwidth returns achieved global-memory bytes per second
// (useful + overfetch, as a bandwidth benchmark measures).
func (r Result) GlobalBandwidth() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.GlobalBytes) / r.Seconds
}

// DominantComponent names the component whose servers were busiest
// — "instruction", "shared" or "global" — normalizing each busy sum
// by its server count (30 SMs vs 10 memory clusters on the GTX 285).
func (r Result) DominantComponent() string {
	sms, clus := r.NumSMs, r.NumClusters
	if sms == 0 {
		sms = 1
	}
	if clus == 0 {
		clus = 1
	}
	instr := r.BusyInstr / float64(sms)
	shared := r.BusyShared / float64(sms)
	global := r.BusyGlobal / float64(clus)
	switch {
	case global >= instr && global >= shared:
		return "global"
	case shared >= instr:
		return "shared"
	default:
		return "instruction"
	}
}

// event is one pending simulation action.
type event struct {
	t    float64
	seq  int64 // tie-break for determinism
	warp *simWarp
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }

// Less orders by time, then by warp progress (fewest instructions
// issued first — the hardware's fair round-robin selection; without
// this, greedy ordering forms convoys that leave issue slots idle),
// then by insertion order for determinism. A warp's issued count is
// stable while its single outstanding event is queued, so the heap
// key never mutates in place.
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	if q[i].warp.issued != q[j].warp.issued {
		return q[i].warp.issued < q[j].warp.issued
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// simWarp wraps a functional warp with scoreboard state.
type simWarp struct {
	fw    *barra.Warp
	block *simBlock

	regReady  []float64 // per architectural register
	predReady [isa.NumPreds]float64
	nextIssue float64 // in-order issue constraint
	smemReady float64 // no intra-warp shared-memory pipelining: the
	// GT200's small in-warp instruction window means a warp's next
	// shared-memory access waits for the previous one's completion
	// (paper §4.1: latency hiding is inter-warp). Global memory is
	// exempt — its memory-level parallelism is real (paper Fig. 3's
	// transactions-per-thread axis).
	issued int64 // instructions issued (scheduler fairness key)

	waiting bool // parked at a barrier
	done    bool
}

type simBlock struct {
	sm        *simSM
	warps     []*simWarp
	atBarrier int
	live      int
}

type simSM struct {
	id       int
	unitFree [isa.NumClasses]float64
	smemFree float64
	cluster  *simCluster
	resident int // live blocks
	slots    int
}

type simCluster struct {
	free float64
}

type sim struct {
	cfg     gpu.Config
	launch  barra.Launch
	mem     *barra.Memory
	banks   *bank.Sim
	coal    *coalesce.Sim
	sms     []*simSM
	clus    []*simCluster
	queue   eventQueue
	seq     int64
	nextBlk int
	res     Result
	info    barra.StepInfo
	txBuf   []coalesce.Transaction // reusable coalescer output

	occ          [isa.NumClasses]float64 // issue occupancy per class
	lat          [isa.NumClasses]float64 // result latency per class
	smemTxCycles float64
	smemLat      float64
	gmemRate     float64 // bytes per cycle per cluster
	gmemLat      float64

	budget int64
	issued int64
}

// Run executes the launch with timing and returns the result.
func Run(cfg gpu.Config, l barra.Launch, mem *barra.Memory) (Result, error) {
	return RunContext(context.Background(), cfg, l, mem)
}

// RunContext is Run with cancellation: the event loop observes ctx
// every few thousand events, so a service can abort a long timing
// simulation promptly.
func RunContext(ctx context.Context, cfg gpu.Config, l barra.Launch, mem *barra.Memory) (Result, error) {
	return runBudget(ctx, cfg, l, mem, 0)
}

// RunBudget is Run with an instruction budget (0 = default 4e9)
// guarding against runaway kernels.
func RunBudget(cfg gpu.Config, l barra.Launch, mem *barra.Memory, budget int64) (Result, error) {
	return runBudget(context.Background(), cfg, l, mem, budget)
}

func runBudget(ctx context.Context, cfg gpu.Config, l barra.Launch, mem *barra.Memory, budget int64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := l.Validate(cfg); err != nil {
		return Result{}, err
	}
	if mem == nil {
		return Result{}, fmt.Errorf("device: nil memory")
	}
	occRes, err := occupancy.Compute(cfg, occupancy.Usage{
		ThreadsPerBlock:   l.Block,
		RegsPerThread:     l.Prog.RegsPerThread,
		SharedMemPerBlock: l.Prog.SharedMemBytes,
	})
	if err != nil {
		return Result{}, err
	}
	bsim, err := bank.ForGPU(cfg)
	if err != nil {
		return Result{}, err
	}
	csim, err := coalesce.ForGPU(cfg)
	if err != nil {
		return Result{}, err
	}

	s := &sim{
		cfg: cfg, launch: l, mem: mem, banks: bsim, coal: csim,
		budget: budget,
		txBuf:  make([]coalesce.Transaction, 0, gpu.HalfWarp),
	}
	if s.budget <= 0 {
		s.budget = 4e9
	}
	s.res.Occupancy = occRes
	s.res.NumSMs = cfg.NumSMs
	s.res.NumClusters = cfg.NumClusters()

	// Pipeline latency is (approximately) the same wall-clock depth
	// for every class, so classes with fewer units — longer issue
	// occupancy — need fewer warps to cover it: Type IV saturates
	// with 1 warp, Type III around 3, Types I/II around 6-8
	// (paper Fig. 2 left).
	alatency := float64(cfg.ALUPipelineDepth) * float64(gpu.WarpSize) / float64(cfg.SPsPerSM)
	for c := isa.Class(0); int(c) < isa.NumClasses; c++ {
		s.occ[c] = float64(gpu.WarpSize) / float64(c.Units())
		s.lat[c] = alatency
	}
	// One half-warp shared-memory transaction per 2 cycles sustains
	// the 8 SP × 4 B/cycle peak.
	s.smemTxCycles = 2
	s.smemLat = float64(cfg.SharedPipelineDepth) * 4
	s.gmemRate = cfg.PeakGlobalBandwidth() / float64(cfg.NumClusters()) / cfg.CoreClockHz
	s.gmemLat = float64(cfg.GlobalLatencyCycles)

	// Build SMs and clusters.
	s.clus = make([]*simCluster, cfg.NumClusters())
	for i := range s.clus {
		s.clus[i] = &simCluster{}
	}
	s.sms = make([]*simSM, cfg.NumSMs)
	for i := range s.sms {
		s.sms[i] = &simSM{id: i, cluster: s.clus[i/cfg.SMsPerCluster], slots: occRes.Blocks}
	}

	// Initial dispatch: round-robin waves across SMs, up to each
	// SM's resident-block slots.
	for wave := 0; wave < occRes.Blocks; wave++ {
		for _, sm := range s.sms {
			if s.nextBlk >= l.Grid {
				break
			}
			if err := s.startBlock(sm, 0); err != nil {
				return Result{}, err
			}
		}
	}

	// Main loop. The cancellation check amortizes over a batch of
	// events to stay off the per-event path.
	const ctxCheckEvery = 8192
	for n := 0; s.queue.Len() > 0; n++ {
		if n%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		e := heap.Pop(&s.queue).(event)
		if e.warp.done || e.warp.waiting {
			continue
		}
		if err := s.stepWarp(e.warp, e.t); err != nil {
			return Result{}, err
		}
	}

	s.res.Seconds = s.res.Cycles / cfg.CoreClockHz
	return s.res, nil
}

func (s *sim) startBlock(sm *simSM, t float64) error {
	l := s.launch
	blockID := s.nextBlk
	s.nextBlk++
	nw := l.WarpsPerBlock()
	shared := make([]uint32, l.Prog.SharedMemBytes/4)
	blk := &simBlock{sm: sm, live: nw}
	for wi := 0; wi < nw; wi++ {
		lanes := l.Block - wi*gpu.WarpSize
		if lanes > gpu.WarpSize {
			lanes = gpu.WarpSize
		}
		fw, err := barra.NewWarp(l.Prog, blockID, wi, l.Block, l.Grid, lanes, shared, s.mem)
		if err != nil {
			return err
		}
		w := &simWarp{
			fw:       fw,
			block:    blk,
			regReady: make([]float64, l.Prog.RegsPerThread),
		}
		blk.warps = append(blk.warps, w)
		s.schedule(w, t)
	}
	sm.resident++
	return nil
}

func (s *sim) schedule(w *simWarp, t float64) {
	s.seq++
	heap.Push(&s.queue, event{t: t, seq: s.seq, warp: w})
}

func touchesShared(in *isa.Instruction) bool {
	if isa.IsShared(in.Op) {
		return true
	}
	return in.SrcA.Kind == isa.KindSmem || in.SrcB.Kind == isa.KindSmem || in.SrcC.Kind == isa.KindSmem
}

// depsReady returns the earliest cycle the instruction at the warp's
// PC may issue, considering the in-order constraint, source
// registers, the guard predicate, and the one-outstanding-access
// shared-memory constraint.
func (s *sim) depsReady(w *simWarp, in *isa.Instruction) float64 {
	t := w.nextIssue
	if touchesShared(in) && w.smemReady > t {
		t = w.smemReady
	}
	consider := func(o isa.Operand) {
		if o.Kind != isa.KindReg {
			return
		}
		if r := w.regReady[o.Reg]; r > t {
			t = r
		}
		if isa.IsDouble(in.Op) && int(o.Reg)+1 < len(w.regReady) {
			if r := w.regReady[o.Reg+1]; r > t {
				t = r
			}
		}
	}
	consider(in.SrcA)
	consider(in.SrcB)
	consider(in.SrcC)
	if in.Guard != isa.PT {
		if r := w.predReady[in.Guard]; r > t {
			t = r
		}
	}
	return t
}

func (s *sim) stepWarp(w *simWarp, now float64) error {
	if s.issued >= s.budget {
		return fmt.Errorf("device: instruction budget exhausted (%d) — runaway kernel %q?",
			s.budget, s.launch.Prog.Name)
	}
	pc := w.fw.PC()
	in := &s.launch.Prog.Code[pc]
	class := isa.ClassOf(in.Op)
	sm := w.block.sm

	// Dependency and server availability; reschedule if not yet.
	ready := s.depsReady(w, in)
	if ready > now {
		s.schedule(w, ready)
		return nil
	}
	if free := sm.unitFree[class]; free > now {
		s.schedule(w, free)
		return nil
	}

	// Issue: execute functionally.
	if err := w.fw.Step(&s.info); err != nil {
		return err
	}
	s.issued++
	w.issued++
	info := &s.info
	t := now
	occ := s.occ[class]
	sm.unitFree[class] = t + occ
	w.nextIssue = t + occ
	s.res.WarpInstrs++
	s.res.ByClass[class]++
	s.res.BusyInstr += occ
	if end := t + occ; end > s.res.Cycles {
		s.res.Cycles = end
	}

	switch {
	case info.Barrier:
		return s.arriveBarrier(w, t+occ)
	case info.Done:
		return s.warpExit(w, t+occ)
	case isa.IsShared(in.Op):
		s.timeShared(w, in, info, t)
	case isa.IsGlobal(in.Op):
		s.timeGlobal(w, in, info, t)
	default:
		done := t + s.lat[class]
		if info.SmemOperand {
			// The shared-memory ALU operand occupies the shared
			// pipeline for one broadcast transaction per active
			// half-warp and adds its latency to the result.
			sm := w.block.sm
			halves := 0
			for half := 0; half < gpu.WarpSize/gpu.HalfWarp; half++ {
				if info.HalfMask(half) != 0 {
					halves++
				}
			}
			start := max(t, sm.smemFree)
			busy := s.smemTxCycles * float64(halves)
			sm.smemFree = start + busy
			s.res.BusyShared += busy
			s.res.SharedBytes += int64(halves) * 4
			if d := start + busy + s.smemLat; d > done {
				done = d
			}
			w.smemReady = start + busy + s.smemLat
		}
		if isa.HasDst(in.Op) {
			w.regReady[in.Dst] = done
			if isa.IsDouble(in.Op) {
				w.regReady[in.Dst+1] = done
			}
		} else if isa.WritesPredicate(in.Op) {
			w.predReady[in.PDst] = t + s.lat[class]
		}
	}

	if !w.fw.Done() {
		s.schedule(w, w.nextIssue)
	}
	return nil
}

// timeShared serializes the access's bank transactions through the
// SM's shared-memory pipeline.
func (s *sim) timeShared(w *simWarp, in *isa.Instruction, info *barra.StepInfo, t float64) {
	sm := w.block.sm
	totalTx, halves := 0, 0
	var buf [gpu.HalfWarp]uint32
	for half := 0; half < gpu.WarpSize/gpu.HalfWarp; half++ {
		addrs := info.GatherHalf(half, &buf)
		if len(addrs) > 0 {
			totalTx += s.banks.Transactions(addrs)
			halves++
		}
	}
	if totalTx == 0 {
		return
	}
	start := max(t, sm.smemFree)
	busy := s.smemTxCycles * float64(totalTx)
	sm.smemFree = start + busy
	s.res.BusyShared += busy
	s.res.SharedBytes += int64(info.ActiveCount) * 4
	// Bank-conflict replays re-traverse the shared-memory pipeline
	// sequentially from the warp's point of view: a k-way conflicted
	// access costs the warp k pipeline passes, which is why the
	// paper's cyclic reduction loses a full factor per conflict
	// doubling. The SM-level server above still charges only the
	// bandwidth (2 cycles/transaction).
	degree := float64(totalTx) / float64(halves)
	done := start + busy + s.smemLat*degree
	w.smemReady = done
	if in.Op == isa.OpSLD {
		w.regReady[in.Dst] = done
	}
	if done > s.res.Cycles {
		s.res.Cycles = done
	}
}

// timeGlobal pushes the access's coalesced transactions through the
// SM's cluster memory pipeline.
func (s *sim) timeGlobal(w *simWarp, in *isa.Instruction, info *barra.StepInfo, t float64) {
	cl := w.block.sm.cluster
	var lastDone float64
	var buf [gpu.HalfWarp]uint32
	for half := 0; half < gpu.WarpSize/gpu.HalfWarp; half++ {
		addrs := info.GatherHalf(half, &buf)
		if len(addrs) == 0 {
			continue
		}
		s.txBuf = s.coal.HalfWarpInto(s.txBuf[:0], addrs, 4)
		for _, tx := range s.txBuf {
			start := max(t, cl.free)
			busy := float64(tx.Size) / s.gmemRate
			cl.free = start + busy
			s.res.BusyGlobal += busy
			s.res.GlobalBytes += int64(tx.Size)
			s.res.GlobalTransactions++
			if d := start + busy; d > lastDone {
				lastDone = d
			}
		}
	}
	if lastDone == 0 {
		return
	}
	done := lastDone + s.gmemLat
	if in.Op == isa.OpGLD {
		w.regReady[in.Dst] = done
	} else {
		// Stores retire without blocking the warp; account time for
		// the tail only.
		done = lastDone
	}
	if done > s.res.Cycles {
		s.res.Cycles = done
	}
}

func (s *sim) arriveBarrier(w *simWarp, t float64) error {
	blk := w.block
	w.waiting = true
	blk.atBarrier++
	if blk.atBarrier < blk.live {
		return nil
	}
	// Release: all waiting warps resume.
	blk.atBarrier = 0
	for _, ww := range blk.warps {
		if ww.done || !ww.waiting {
			continue
		}
		ww.waiting = false
		if ww.nextIssue < t {
			ww.nextIssue = t
		}
		s.schedule(ww, ww.nextIssue)
	}
	return nil
}

func (s *sim) warpExit(w *simWarp, t float64) error {
	blk := w.block
	w.done = true
	blk.live--
	if blk.atBarrier > 0 && blk.atBarrier >= blk.live {
		return fmt.Errorf("device: %q: warps wait at a barrier after others exited", s.launch.Prog.Name)
	}
	blockDone := blk.live == 0
	releaseSlot := blockDone
	if s.cfg.EarlyRelease && !blockDone {
		// Early release: a fresh block may start as soon as a
		// block's worth of warps has retired SM-wide. Approximate
		// by allowing refill when this block has fewer live warps
		// than a full block and a slot's worth have exited.
		exited := 0
		for _, ww := range blk.warps {
			if ww.done {
				exited++
			}
		}
		releaseSlot = exited == len(blk.warps)/2 && len(blk.warps) > 1
	}
	if blockDone {
		blk.sm.resident--
	}
	if releaseSlot && s.nextBlk < s.launch.Grid {
		return s.startBlock(blk.sm, t)
	}
	return nil
}

// Utilization returns the busy fraction of each component's servers
// over the run — the profiler-style view (per the paper's intro,
// profilers surface statistics; the model turns them into verdicts).
func (r Result) Utilization() (instr, shared, global float64) {
	if r.Cycles == 0 {
		return 0, 0, 0
	}
	sms, clus := r.NumSMs, r.NumClusters
	if sms == 0 {
		sms = 1
	}
	if clus == 0 {
		clus = 1
	}
	instr = r.BusyInstr / float64(sms) / r.Cycles
	shared = r.BusyShared / float64(sms) / r.Cycles
	global = r.BusyGlobal / float64(clus) / r.Cycles
	return instr, shared, global
}

// Report renders the run like a profiler summary.
func (r Result) Report() string {
	i, s, g := r.Utilization()
	return fmt.Sprintf(
		"time %.6g ms (%.0f cycles)\n"+
			"instructions: %d warp-level (%.3g instr/s)\n"+
			"shared traffic: %d B (%.3g GB/s)\n"+
			"global traffic: %d B in %d transactions (%.3g GB/s)\n"+
			"utilization: instruction %.0f%%, shared %.0f%%, global %.0f%% -> %s-dominated\n"+
			"occupancy: %s",
		r.Seconds*1e3, r.Cycles,
		r.WarpInstrs, r.InstrThroughput(),
		r.SharedBytes, r.SharedBandwidth()/1e9,
		r.GlobalBytes, r.GlobalTransactions, r.GlobalBandwidth()/1e9,
		i*100, s*100, g*100, r.DominantComponent(),
		r.Occupancy)
}
