// Package coalesce simulates global-memory transaction formation.
//
// It implements the CUDA compute-capability 1.2/1.3 coalescing
// protocol the paper describes in §4.3: memory transactions are
// issued per half-warp; the hardware (1) finds the memory segment
// containing the address requested by the lowest-numbered active
// thread, (2) folds in all other threads whose addresses fall in
// that segment, (3) shrinks the segment while it still covers every
// folded-in address, and (4) repeats until all threads are served.
// The minimum segment is 32 bytes on real hardware; the paper's §5.3
// evaluates a hypothetical 16-byte granularity, which this simulator
// supports through gpu.WithMinSegment.
package coalesce

import (
	"fmt"

	"gpuperf/internal/gpu"
)

// Transaction is one hardware memory transaction.
type Transaction struct {
	// Addr is the segment-aligned base address.
	Addr uint32
	// Size is the segment size in bytes (power of two).
	Size int
}

// Sim forms transactions under a device's segment-size rules.
type Sim struct {
	minSeg int
	maxSeg int
}

// New builds a simulator with the given segment bounds (powers of
// two, min ≤ max).
func New(minSeg, maxSeg int) (*Sim, error) {
	switch {
	case minSeg <= 0 || minSeg&(minSeg-1) != 0:
		return nil, fmt.Errorf("coalesce: bad min segment %d", minSeg)
	case maxSeg < minSeg || maxSeg&(maxSeg-1) != 0:
		return nil, fmt.Errorf("coalesce: bad max segment %d", maxSeg)
	}
	return &Sim{minSeg: minSeg, maxSeg: maxSeg}, nil
}

// ForGPU builds the simulator from a device configuration.
func ForGPU(c gpu.Config) (*Sim, error) { return New(c.MinSegmentBytes, c.MaxSegmentBytes) }

// HalfWarp forms the transactions for one half-warp access.
// addrs[i] is the byte address requested by active lane i;
// accessBytes is the per-thread access width (4 for float). Inactive
// lanes must be omitted by the caller. The returned transactions are
// in service order.
func (s *Sim) HalfWarp(addrs []uint32, accessBytes int) []Transaction {
	return s.HalfWarpInto(nil, addrs, accessBytes)
}

// HalfWarpInto is HalfWarp appending into dst, the allocation-free
// form for hot loops: with a caller-provided buffer of capacity ≥
// gpu.HalfWarp nothing escapes to the heap (the working set is a
// fixed 16-lane stack array — a half-warp has at most 16 pending
// addresses). The appended transactions are in service order.
//
//gpuperf:noalloc
func (s *Sim) HalfWarpInto(dst []Transaction, addrs []uint32, accessBytes int) []Transaction {
	if len(addrs) == 0 {
		return dst
	}
	if accessBytes <= 0 {
		accessBytes = 4
	}
	var buf [gpu.HalfWarp]uint32
	var pending []uint32
	if len(addrs) <= len(buf) {
		pending = buf[:0]
	} else {
		pending = make([]uint32, 0, len(addrs)) //gpuperf:alloc-ok beyond-half-warp path for synthetic sweeps; the engine always passes ≤16 addresses
	}
	pending = append(pending, addrs...) //gpuperf:alloc-ok fills the fixed stack buffer (or the guarded fallback above); never grows
	segMask := uint32(s.maxSeg) - 1     // maxSeg is a power of two
	for len(pending) > 0 {
		// (1) Segment of the lowest-numbered remaining thread, at
		// the maximum segment size.
		segSize := uint32(s.maxSeg)
		base := pending[0] &^ segMask

		// (2) Serve every thread whose access falls inside,
		// compacting the rest in place (service order preserved).
		n := 0
		lo, hi := uint32(0xffffffff), uint32(0)
		for _, a := range pending {
			end := a + uint32(accessBytes) - 1
			if a&^segMask == base && end&^segMask == base {
				if a < lo {
					lo = a
				}
				if end > hi {
					hi = end
				}
			} else {
				pending[n] = a
				n++
			}
		}
		pending = pending[:n]

		// (3) Shrink the segment while it still covers [lo, hi].
		size := segSize
		addr := base
		for size/2 >= uint32(s.minSeg) {
			half := size / 2
			loHalf := addr + half
			switch {
			case hi < loHalf: // all in lower half
				size = half
			case lo >= loHalf: // all in upper half
				addr += half
				size = half
			default:
				goto done
			}
		}
	done:
		dst = append(dst, Transaction{Addr: addr, Size: int(size)}) //gpuperf:alloc-ok appends into caller scratch; capacity reaches steady state after the first blocks
	}
	return dst
}

// Bytes sums the bytes moved by a transaction list.
func Bytes(txs []Transaction) int {
	n := 0
	for _, t := range txs {
		n += t.Size
	}
	return n
}

// Warp forms transactions for a full warp by splitting it into
// half-warps, the hardware's issue granularity. active[i] reports
// whether lane i participates; addrs is indexed by lane.
func (s *Sim) Warp(addrs []uint32, active []bool, accessBytes int) []Transaction {
	var txs []Transaction
	var hw [gpu.HalfWarp]uint32
	for half := 0; half*gpu.HalfWarp < len(addrs); half++ {
		n := 0
		for lane := half * gpu.HalfWarp; lane < (half+1)*gpu.HalfWarp && lane < len(addrs); lane++ {
			if active == nil || active[lane] {
				hw[n] = addrs[lane]
				n++
			}
		}
		txs = s.HalfWarpInto(txs, hw[:n], accessBytes)
	}
	return txs
}

// Efficiency returns useful bytes / transferred bytes for an access:
// the coalescing-efficiency diagnostic the model reports (1.0 =
// perfectly coalesced).
func (s *Sim) Efficiency(addrs []uint32, accessBytes int) float64 {
	if len(addrs) == 0 {
		return 1
	}
	txs := s.HalfWarp(addrs, accessBytes)
	moved := Bytes(txs)
	if moved == 0 {
		return 1
	}
	return float64(len(addrs)*accessBytes) / float64(moved)
}
