package coalesce

import (
	"testing"
	"testing/quick"

	"gpuperf/internal/gpu"
)

func sim(t *testing.T) *Sim {
	t.Helper()
	s, err := ForGPU(gpu.GTX285())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func seq(base uint32, n int, strideBytes uint32) []uint32 {
	a := make([]uint32, n)
	for i := range a {
		a[i] = base + uint32(i)*strideBytes
	}
	return a
}

func TestNewErrors(t *testing.T) {
	for _, c := range []struct{ lo, hi int }{{0, 128}, {33, 128}, {32, 24}, {32, 96}, {-32, 128}} {
		if _, err := New(c.lo, c.hi); err == nil {
			t.Errorf("New(%d,%d) accepted", c.lo, c.hi)
		}
	}
}

// TestPerfectlyCoalesced: 16 consecutive floats = one 64-byte
// transaction.
func TestPerfectlyCoalesced(t *testing.T) {
	s := sim(t)
	txs := s.HalfWarp(seq(0, 16, 4), 4)
	if len(txs) != 1 || txs[0] != (Transaction{Addr: 0, Size: 64}) {
		t.Errorf("got %v, want one 64B tx at 0", txs)
	}
	// Same but offset within a 128B segment and spanning two halves:
	// stays one 128B transaction (cannot shrink).
	txs = s.HalfWarp(seq(32, 16, 4), 4)
	if len(txs) != 1 || txs[0].Size != 128 || txs[0].Addr != 0 {
		t.Errorf("offset access: %v", txs)
	}
}

// TestSegmentShrinking: accesses confined to a 32-byte window shrink
// the 128-byte segment down to 32 bytes (protocol step 3).
func TestSegmentShrinking(t *testing.T) {
	s := sim(t)
	txs := s.HalfWarp(seq(64, 8, 4), 4)
	if len(txs) != 1 || txs[0] != (Transaction{Addr: 64, Size: 32}) {
		t.Errorf("got %v, want one 32B tx at 64", txs)
	}
	// A single 4-byte access costs the 32-byte minimum on hardware...
	txs = s.HalfWarp([]uint32{100}, 4)
	if len(txs) != 1 || txs[0].Size != 32 {
		t.Errorf("single access: %v", txs)
	}
	// ...but 16 bytes under the §5.3 fine-granularity variant.
	fine, err := ForGPU(gpu.GTX285(gpu.WithMinSegment(16)))
	if err != nil {
		t.Fatal(err)
	}
	txs = fine.HalfWarp([]uint32{100}, 4)
	if len(txs) != 1 || txs[0].Size != 16 {
		t.Errorf("fine-grained single access: %v", txs)
	}
}

// TestFullyScattered: 16 threads touching 16 different 128-byte
// segments produce 16 minimum-size transactions — the uncoalesced
// worst case that dominates SpMV vector loads.
func TestFullyScattered(t *testing.T) {
	s := sim(t)
	txs := s.HalfWarp(seq(0, 16, 128), 4)
	if len(txs) != 16 {
		t.Fatalf("got %d transactions, want 16", len(txs))
	}
	for _, tx := range txs {
		if tx.Size != 32 {
			t.Errorf("scattered tx size %d, want 32", tx.Size)
		}
	}
}

// TestTwoGroups: threads split across two segments (protocol step 4
// repeats): lowest-thread segment first, then the rest.
func TestTwoGroups(t *testing.T) {
	s := sim(t)
	addrs := append(seq(0, 8, 4), seq(4096, 8, 4)...)
	txs := s.HalfWarp(addrs, 4)
	if len(txs) != 2 {
		t.Fatalf("got %v", txs)
	}
	if txs[0] != (Transaction{Addr: 0, Size: 32}) || txs[1] != (Transaction{Addr: 4096, Size: 32}) {
		t.Errorf("got %v", txs)
	}
}

// TestPaperFigure10Example reproduces the paper's Fig. 10 toy
// protocol: 2-thread issue granularity with 8-byte transactions.
// Straightforward vector storage: thread 1 reads entry 1, thread 2
// reads entry 7 — too far apart to share, two transactions.
// Interleaved storage brings neighbors together: entries 5 and 6
// share one 8-byte transaction.
func TestPaperFigure10Example(t *testing.T) {
	toy, err := New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	far := toy.HalfWarp([]uint32{0 * 4, 6 * 4}, 4) // entries 1 and 7 (0-based 0,6)
	if len(far) != 2 {
		t.Errorf("far apart: %v", far)
	}
	near := toy.HalfWarp([]uint32{4 * 4, 5 * 4}, 4) // entries 5 and 6 (0-based 4,5)
	if len(near) != 1 || near[0].Size != 8 {
		t.Errorf("adjacent: %v", near)
	}
}

func TestWarpSplitsIntoHalfWarps(t *testing.T) {
	s := sim(t)
	// 32 consecutive floats: two half-warps, one 64B tx each; they
	// are not merged across the half-warp boundary on CC 1.x.
	txs := s.Warp(seq(0, 32, 4), nil, 4)
	if len(txs) != 2 || txs[0].Size != 64 || txs[1].Size != 64 {
		t.Errorf("got %v", txs)
	}
	// Predicated-off lanes are excluded.
	active := make([]bool, 32)
	for i := 0; i < 4; i++ {
		active[i] = true
	}
	txs = s.Warp(seq(0, 32, 4), active, 4)
	if len(txs) != 1 || txs[0].Size != 32 {
		t.Errorf("masked warp: %v", txs)
	}
	if got := s.Warp(nil, nil, 4); got != nil {
		t.Errorf("empty warp: %v", got)
	}
}

func TestEfficiency(t *testing.T) {
	s := sim(t)
	if e := s.Efficiency(seq(0, 16, 4), 4); e != 1.0 {
		t.Errorf("coalesced efficiency = %v", e)
	}
	if e := s.Efficiency(seq(0, 16, 128), 4); e != 64.0/512.0 {
		t.Errorf("scattered efficiency = %v", e)
	}
	if e := s.Efficiency(nil, 4); e != 1.0 {
		t.Errorf("empty efficiency = %v", e)
	}
}

// Property tests of the protocol.
func TestProtocolProperties(t *testing.T) {
	s := sim(t)
	f := func(raw []uint32) bool {
		if len(raw) > 16 {
			raw = raw[:16]
		}
		addrs := make([]uint32, len(raw))
		for i, r := range raw {
			addrs[i] = (r % (1 << 20)) &^ 3
		}
		txs := s.HalfWarp(addrs, 4)
		if len(addrs) == 0 {
			return txs == nil
		}
		// Never more transactions than threads.
		if len(txs) > len(addrs) || len(txs) == 0 {
			return false
		}
		for _, tx := range txs {
			// Sizes within bounds, power of two, aligned.
			if tx.Size < 32 || tx.Size > 128 || tx.Size&(tx.Size-1) != 0 {
				return false
			}
			if tx.Addr%uint32(tx.Size) != 0 {
				return false
			}
		}
		// Every requested word is covered by some transaction.
		for _, a := range addrs {
			covered := false
			for _, tx := range txs {
				if a >= tx.Addr && a+4 <= tx.Addr+uint32(tx.Size) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// The transaction count must be monotone under scattering: spreading
// the same thread count across a wider stride can never reduce the
// transaction count.
func TestMonotoneInStride(t *testing.T) {
	s := sim(t)
	prev := 0
	for _, stride := range []uint32{4, 8, 16, 32, 64, 128, 256} {
		n := len(s.HalfWarp(seq(0, 16, stride), 4))
		if n < prev {
			t.Errorf("stride %d: %d txs < previous %d", stride, n, prev)
		}
		prev = n
	}
}
