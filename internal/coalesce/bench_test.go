package coalesce

// Microbenchmarks for transaction formation:
//
//	go test -run - -bench BenchmarkCoalesceHalfWarp -benchmem ./internal/coalesce/
//
// HalfWarpInto is the engine's per-half-warp hot call; the three
// patterns span the paper's spectrum from perfectly coalesced
// (one 64 B transaction) through strided (one segment per lane) to
// scattered irregular accesses.

import (
	"math/rand"
	"testing"
)

var sinkLen int

func BenchmarkCoalesceHalfWarp(b *testing.B) {
	s, err := New(32, 128)
	if err != nil {
		b.Fatal(err)
	}
	coalesced := make([]uint32, 16)
	strided := make([]uint32, 16)
	scattered := make([]uint32, 16)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 16; i++ {
		coalesced[i] = uint32(i * 4)
		strided[i] = uint32(i * 512)
		scattered[i] = uint32(rng.Intn(1<<20)) &^ 3
	}
	cases := []struct {
		name  string
		addrs []uint32
	}{
		{"coalesced", coalesced},
		{"strided", strided},
		{"scattered", scattered},
	}
	buf := make([]Transaction, 0, 16)
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = s.HalfWarpInto(buf[:0], c.addrs, 4)
				sinkLen += len(buf)
			}
		})
	}
}
