// Package microbench generates the three microbenchmark kernel
// families of paper §4 — instruction-pipeline chains, shared-memory
// copies, and synthetic global-memory streams — as native-ISA
// programs.
//
// The paper builds these by rewriting GPU binaries with a CUBIN
// generator so the compiler cannot optimize them away; here the
// kbuild builder emits the instruction streams directly. The timing
// package runs them on the device simulator to calibrate the
// model's throughput curves.
package microbench

import (
	"fmt"

	"gpuperf/internal/isa"
	"gpuperf/internal/kbuild"
)

// InstrChain builds a kernel that executes a straight-line dependent
// chain of n instructions of the given opcode — the §4.1 pipeline
// microbenchmark. Dependence is total (each instruction consumes its
// predecessor's result), so the only latency-hiding parallelism is
// across warps, which is precisely what Fig. 2 (left) varies.
func InstrChain(op isa.Opcode, n int) (*isa.Program, error) {
	if n <= 0 {
		return nil, fmt.Errorf("microbench: chain length %d", n)
	}
	b := kbuild.New(fmt.Sprintf("ichain_%s", op))
	x := b.Reg()
	if isa.IsDouble(op) {
		x = b.RegPair()
	}
	b.MovF(x, 1.0)
	for i := 0; i < n; i++ {
		switch {
		case op == isa.OpFMAD:
			b.FMad(x, x, x, x)
		case op == isa.OpFMUL:
			b.FMul(x, x, x)
		case op == isa.OpFADD:
			b.FAdd(x, x, x)
		case op == isa.OpMOV:
			b.Mov(x, x)
		case isa.ClassOf(op) == isa.ClassIII:
			b.Unary(op, x, x)
		case op == isa.OpDFMA:
			b.DFma(x, x, x, x)
		case op == isa.OpDMUL:
			b.Emit(isa.Instruction{Op: isa.OpDMUL, Guard: isa.PT, Dst: x, SrcA: isa.R(x), SrcB: isa.R(x)})
		case op == isa.OpDADD:
			b.Emit(isa.Instruction{Op: isa.OpDADD, Guard: isa.PT, Dst: x, SrcA: isa.R(x), SrcB: isa.R(x)})
		default:
			return nil, fmt.Errorf("microbench: unsupported chain op %s", op)
		}
	}
	b.Exit()
	return b.Program()
}

// SharedCopy builds the §4.2 shared-memory microbenchmark: each
// thread repeatedly moves a word between two shared-memory regions.
// strideWords controls the inter-thread stride (1 = conflict-free;
// 2^k produces 2^k-way bank conflicts on 16 banks). The copy pairs
// are unrolled so loop bookkeeping does not throttle the memory
// pipeline.
func SharedCopy(iters, strideWords int) (*isa.Program, error) {
	if iters <= 0 || strideWords <= 0 {
		return nil, fmt.Errorf("microbench: bad shared copy params iters=%d stride=%d", iters, strideWords)
	}
	const unroll = 16
	const region = 8192 // two 8 KB halves of the 16 KB shared memory
	b := kbuild.New(fmt.Sprintf("scopy_s%d", strideWords))
	b.SharedBytes(16 * 1024)
	tid := b.Reg()
	src := b.Reg()
	dst := b.Reg()
	v := b.Reg()
	ctr := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.IMulImm(src, tid, uint32(4*strideWords))
	b.AndImm(src, src, region-1)
	b.IAddImm(dst, src, region)
	b.Loop(ctr, uint32(iters), func() {
		for i := 0; i < unroll; i++ {
			b.Sld(v, src)
			b.Sst(dst, v)
		}
	})
	b.Exit()
	return b.Program()
}

// GlobalStream builds the §4.3 synthetic global-memory benchmark:
// each thread issues transPerThread independent, perfectly coalesced
// loads marching through memory with the whole grid's footprint as
// the stride. memBytes must be a power of two covering the
// footprint; addresses wrap inside it.
func GlobalStream(transPerThread, totalThreads, memBytes int) (*isa.Program, error) {
	if transPerThread <= 0 || totalThreads <= 0 {
		return nil, fmt.Errorf("microbench: bad stream params M=%d threads=%d", transPerThread, totalThreads)
	}
	if memBytes <= 0 || memBytes&(memBytes-1) != 0 {
		return nil, fmt.Errorf("microbench: memBytes %d not a power of two", memBytes)
	}
	const unroll = 4
	b := kbuild.New(fmt.Sprintf("gstream_m%d", transPerThread))
	tid := b.Reg()
	ntid := b.Reg()
	cta := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	ctr := b.Reg()
	b.S2R(tid, isa.SRTid)
	b.S2R(ntid, isa.SRNtid)
	b.S2R(cta, isa.SRCtaid)
	b.IMad(addr, cta, ntid, tid)
	b.ShlImm(addr, addr, 2)
	stride := uint32(totalThreads * 4)
	mask := uint32(memBytes - 1)
	n := transPerThread
	emit := func() {
		b.AndImm(addr, addr, mask)
		b.Gld(v, addr)
		b.IAddImm(addr, addr, stride)
	}
	if n < unroll {
		for i := 0; i < n; i++ {
			emit()
		}
	} else {
		iters := n / unroll
		b.Loop(ctr, uint32(iters), func() {
			for i := 0; i < unroll; i++ {
				emit()
			}
		})
		for i := 0; i < n%unroll; i++ {
			emit()
		}
	}
	b.Exit()
	return b.Program()
}
