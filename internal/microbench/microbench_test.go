package microbench

import (
	"testing"

	"gpuperf/internal/barra"
	"gpuperf/internal/gpu"
	"gpuperf/internal/isa"
)

func TestInstrChainComposition(t *testing.T) {
	for _, op := range []isa.Opcode{isa.OpFMAD, isa.OpFMUL, isa.OpRCP, isa.OpSIN, isa.OpDFMA, isa.OpMOV, isa.OpFADD, isa.OpDADD, isa.OpDMUL} {
		p, err := InstrChain(op, 50)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		st := p.StaticStats()
		if st.ByClass[isa.ClassOf(op)] < 50 {
			t.Errorf("%s: chain has %d instructions of its class", op, st.ByClass[isa.ClassOf(op)])
		}
	}
	if _, err := InstrChain(isa.OpFMAD, 0); err == nil {
		t.Error("zero-length chain accepted")
	}
	if _, err := InstrChain(isa.OpBAR, 5); err == nil {
		t.Error("control-op chain accepted")
	}
}

func TestSharedCopyRunsAndMovesData(t *testing.T) {
	p, err := SharedCopy(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpu.GTX285()
	st, err := barra.Run(cfg, barra.Launch{Prog: p, Grid: 2, Block: 128}, barra.NewMemory(4096), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4 iterations × 16 unrolled pairs × 2 ops × 4 warps × 2 blocks.
	if st.Total.SharedAccesses != 4*16*2*4*2 {
		t.Errorf("shared accesses = %d", st.Total.SharedAccesses)
	}
	if st.BankConflictFactor() != 1.0 {
		t.Errorf("unit-stride copy conflicted: %v", st.BankConflictFactor())
	}
	p8, err := SharedCopy(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	st8, err := barra.Run(cfg, barra.Launch{Prog: p8, Grid: 1, Block: 128}, barra.NewMemory(4096), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f := st8.BankConflictFactor(); f != 8.0 {
		t.Errorf("stride-8 copy conflict factor = %v, want 8", f)
	}
	if _, err := SharedCopy(0, 1); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestGlobalStreamCoalesced(t *testing.T) {
	const threads = 256
	p, err := GlobalStream(16, threads, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpu.GTX285()
	st, err := barra.Run(cfg, barra.Launch{Prog: p, Grid: 2, Block: 128}, barra.NewMemory(1<<20), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total.GlobalUsefulBytes != 16*threads*4 {
		t.Errorf("useful bytes = %d, want %d", st.Total.GlobalUsefulBytes, 16*threads*4)
	}
	if e := st.CoalescingEfficiency(); e < 0.99 {
		t.Errorf("stream not coalesced: %v", e)
	}
	if _, err := GlobalStream(0, 4, 64); err == nil {
		t.Error("zero transactions accepted")
	}
	if _, err := GlobalStream(4, 4, 100); err == nil {
		t.Error("non-power-of-two memory accepted")
	}
	// Short streams below the unroll factor still work.
	if _, err := GlobalStream(2, threads, 1<<20); err != nil {
		t.Errorf("short stream rejected: %v", err)
	}
}
