package gpuperf

import (
	"strings"
	"testing"
)

const rewriteHost = `.kernel host
.regs 3
mov r1, 1
iadd r2, r1, r1
exit
`

const rewriteRepl = `.kernel repl
.regs 2
mov r1, 0x2a
exit
`

// TestRewriteKernel covers the binary-modification loop's failure
// modes — until now only the happy path was exercised, and the
// submission endpoint makes these real error surfaces.
func TestRewriteKernel(t *testing.T) {
	raw, err := AssembleText(rewriteHost)
	if err != nil {
		t.Fatal(err)
	}

	// Happy path: the replacement lands under the host kernel's name
	// with its own resource declarations.
	out, err := RewriteKernel(raw, "host", rewriteRepl)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	text, err := DisassembleContainer(out)
	if err != nil {
		t.Fatalf("disassembling rewritten container: %v", err)
	}
	if !strings.Contains(text, ".kernel host") || !strings.Contains(text, "0x2a") {
		t.Fatalf("rewritten container lost the host name or the replacement body:\n%s", text)
	}

	t.Run("unknown kernel name", func(t *testing.T) {
		_, err := RewriteKernel(raw, "no-such-kernel", rewriteRepl)
		if err == nil || !strings.Contains(err.Error(), "not found") {
			t.Fatalf("err = %v, want a not-found rejection", err)
		}
	})
	t.Run("malformed replacement source", func(t *testing.T) {
		_, err := RewriteKernel(raw, "host", ".kernel r\n.regs 2\nbogus r1, r2\nexit\n")
		if err == nil {
			t.Fatal("malformed replacement accepted")
		}
	})
	t.Run("replacement with no exit", func(t *testing.T) {
		_, err := RewriteKernel(raw, "host", ".kernel r\n.regs 2\nmov r1, 1\n")
		if err == nil || !strings.Contains(err.Error(), "exit") {
			t.Fatalf("err = %v, want a no-exit rejection", err)
		}
	})
	t.Run("multi-kernel replacement source", func(t *testing.T) {
		_, err := RewriteKernel(raw, "host", rewriteRepl+rewriteHost)
		if err == nil || !strings.Contains(err.Error(), "expected 1 kernel") {
			t.Fatalf("err = %v, want a single-kernel rejection", err)
		}
	})
	t.Run("empty container bytes", func(t *testing.T) {
		_, err := RewriteKernel(nil, "host", rewriteRepl)
		if err == nil || !strings.Contains(err.Error(), "short file") {
			t.Fatalf("err = %v, want a short-file rejection", err)
		}
	})
	t.Run("container with zero kernels", func(t *testing.T) {
		empty, err := AssembleText("")
		if err != nil {
			t.Fatal(err)
		}
		_, err = RewriteKernel(empty, "host", rewriteRepl)
		if err == nil || !strings.Contains(err.Error(), "not found") {
			t.Fatalf("err = %v, want a not-found rejection", err)
		}
	})
	t.Run("garbage container bytes", func(t *testing.T) {
		_, err := RewriteKernel([]byte(strings.Repeat("x", 64)), "host", rewriteRepl)
		if err == nil {
			t.Fatal("garbage container accepted")
		}
	})
}
