package gpuperf

import (
	"fmt"
	"time"

	"gpuperf/internal/barra"
	"gpuperf/internal/ingest"
)

// Bring-your-own-kernel: POST /v1/kernels accepts an untrusted
// program (assembly text or a compiled container) plus its launch
// geometry and declared input buffers, runs it through the
// internal/ingest admission pipeline (static ceilings plus the bounds
// verifier), and registers the accepted submission as an ephemeral
// kernel whose registry name is its content-addressed id. From there
// the existing analyze/advise/measure/compare path serves it
// unchanged — including the result cache, whose keys are
// automatically content-addressed because the kernel name is.

// BufferSpec declares one input buffer of a kernel submission; see
// the field docs in internal/ingest.
type BufferSpec = ingest.BufferSpec

// SubmissionLimits are the per-submission ceilings and submission
// store budgets; see the field docs in internal/ingest. Zero fields
// take the package defaults.
type SubmissionLimits = ingest.Limits

// ingestStore aliases the submission store for the Fleet struct.
type ingestStore = ingest.Store

// KernelSubmission is the POST /v1/kernels request body: exactly one
// of Source or Container, the launch geometry, and the declared
// global-memory buffers (laid out contiguously from address 0 in
// declaration order, 4 bytes per element).
type KernelSubmission struct {
	// Label is an optional human-readable name echoed in receipts; it
	// does not participate in the submission's content hash.
	Label string `json:"label,omitempty"`
	// Source is assembly text in the gpuasm syntax.
	Source string `json:"source,omitempty"`
	// Container is a compiled GCUB container (base64 in JSON).
	Container []byte `json:"container,omitempty"`
	// Kernel names the kernel within a multi-kernel source or
	// container; empty means the sole kernel.
	Kernel string `json:"kernel,omitempty"`
	// Grid and Block are the launch geometry.
	Grid  int `json:"grid"`
	Block int `json:"block"`
	// Buffers declares the global-memory envelope every access must
	// provably stay inside.
	Buffers []BufferSpec `json:"buffers"`
}

// SubmissionReceipt is the POST /v1/kernels response: the accepted
// submission's content-addressed id (also its registry kernel name —
// pass it as Request.Kernel to analyze it) and the static summary the
// admission pass computed.
type SubmissionReceipt struct {
	// ID is "subm-<hash16>", the submission's registry kernel name.
	ID string `json:"id"`
	// Kernel is the program's own name inside the container.
	Kernel string `json:"kernel"`
	Label  string `json:"label,omitempty"`
	// Existing is true when an identical program+spec was already
	// resident — the submission was deduplicated, not re-admitted.
	Existing bool `json:"existing,omitempty"`
	Grid     int  `json:"grid"`
	Block    int  `json:"block"`
	// Static summary from admission.
	Instructions   int   `json:"instructions"`
	Registers      int   `json:"registers"`
	SharedMemBytes int   `json:"shared_mem_bytes"`
	FootprintBytes int64 `json:"footprint_bytes"`
	// MaxWarpInstructions is the dynamic instruction budget frozen at
	// admission; a run exceeding it aborts.
	MaxWarpInstructions int64 `json:"max_warp_instructions"`
	// CreatedAt stamps admission; ExpiresAt is when TTL eviction
	// retires the submission (absent further resubmissions).
	CreatedAt time.Time `json:"created_at"`
	ExpiresAt time.Time `json:"expires_at"`
}

// IsSubmissionID reports whether a kernel name is a submission id
// ("subm-" prefixed) — how front-ends recognize submission traffic.
func IsSubmissionID(name string) bool { return ingest.IsSubmissionID(name) }

// SubmissionID computes the content-addressed id a submission would
// receive, without applying any ceilings or admitting anything — what
// the HTTP router uses to pick the worker shard that owns it.
func SubmissionID(req KernelSubmission) (string, error) {
	id, err := ingest.ID(ingestRequest(req))
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	return id, nil
}

func ingestRequest(req KernelSubmission) ingest.Request {
	return ingest.Request{
		Label:     req.Label,
		Source:    req.Source,
		Container: req.Container,
		Kernel:    req.Kernel,
		Grid:      req.Grid,
		Block:     req.Block,
		Buffers:   req.Buffers,
	}
}

// openSubmissions builds the fleet's submission store and re-registers
// any submissions persisted in SubmissionDir. An open failure (an
// unwritable directory) is deferred to the first SubmitKernel rather
// than failing fleet construction — the rest of the service works.
func (f *Fleet) openSubmissions() {
	lim := f.opt.SubmissionLimits
	f.subs, f.subsErr = ingest.NewStore(ingest.StoreConfig{
		MaxCount: lim.MaxCount,
		MaxBytes: lim.MaxBytes,
		TTL:      lim.TTL,
		Dir:      f.opt.SubmissionDir,
		OnEvict:  func(sub *ingest.Submission) { f.reg.Deregister(sub.ID) },
	})
	if f.subsErr != nil {
		return
	}
	for _, sub := range f.subs.List() {
		f.registerSubmission(sub)
	}
}

// registerSubmission installs a submission's ephemeral kernel spec in
// the fleet's (cloned) registry.
func (f *Fleet) registerSubmission(sub *ingest.Submission) {
	desc := fmt.Sprintf("user-submitted kernel %q, %d×%d launch", sub.Kernel, sub.Grid, sub.Block)
	if sub.Label != "" {
		desc = fmt.Sprintf("user-submitted kernel %q (%s), %d×%d launch", sub.Kernel, sub.Label, sub.Grid, sub.Block)
	}
	// The spec build closes over the immutable Submission: rebuilding
	// per (size, seed) is exactly as deterministic as the built-ins.
	// Size is pinned to 1 — a submission is one concrete problem
	// instance, not a parameterized family.
	spec := KernelSpec{
		Name:        sub.ID,
		Description: desc,
		DefaultSize: 1,
		MaxSize:     1,
		Family:      "submitted",
		Unverified:  true,
		Build: func(dev Device, p Params) (*Workload, error) {
			prog, err := sub.Program()
			if err != nil {
				return nil, err
			}
			mem, regions, err := sub.NewMemory(p.Seed)
			if err != nil {
				return nil, err
			}
			return &Workload{
				Launch:              barra.Launch{Prog: prog, Grid: sub.Grid, Block: sub.Block},
				Mem:                 mem,
				Regions:             regions,
				MaxWarpInstructions: sub.MaxWarpInstructions,
			}, nil
		},
	}
	if err := f.reg.Register(spec); err != nil {
		// Statically impossible: the spec always carries a name, a
		// build function and a positive default size.
		panic(err)
	}
}

// submissionTTL is the effective submission lifetime.
func (f *Fleet) submissionTTL() time.Duration {
	if ttl := f.opt.SubmissionLimits.TTL; ttl > 0 {
		return ttl
	}
	return ingest.DefaultTTL
}

// SubmitKernel admits one user-submitted kernel: compile it through
// the assembler/container toolchain, enforce the per-submission
// ceilings, prove every memory access inside the declared buffer
// envelope, and register the result as an ephemeral kernel named by
// its content-addressed id. Rejections wrap ErrInvalidRequest and
// name the violated ceiling. Resubmitting an identical program+spec
// returns the same id with Existing set and refreshes its TTL.
func (f *Fleet) SubmitKernel(req KernelSubmission) (*SubmissionReceipt, error) {
	if f.subsErr != nil {
		return nil, f.subsErr
	}
	sub, err := ingest.Compile(ingestRequest(req), f.opt.SubmissionLimits, time.Now())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRequest, err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	_, missErr := f.subs.Get(sub.ID)
	existing := missErr == nil
	if err := f.subs.Put(sub); err != nil {
		return nil, err
	}
	f.registerSubmission(sub)
	r := receipt(sub, f.submissionTTL())
	r.Existing = existing
	return r, nil
}

// DeleteKernel evicts a submission by id, deregistering its ephemeral
// kernel and removing its on-disk slot. Unknown (or already expired)
// ids report ErrUnknownKernel.
func (f *Fleet) DeleteKernel(id string) error {
	if f.subsErr != nil {
		return f.subsErr
	}
	if !f.subs.Delete(id) {
		return fmt.Errorf("%w %q", ErrUnknownKernel, id)
	}
	return nil
}

// Submissions lists the resident submissions' receipts, most recently
// used first.
func (f *Fleet) Submissions() []*SubmissionReceipt {
	if f.subs == nil {
		return nil
	}
	ttl := f.submissionTTL()
	subs := f.subs.List()
	out := make([]*SubmissionReceipt, len(subs))
	for i, sub := range subs {
		out[i] = receipt(sub, ttl)
	}
	return out
}

func receipt(sub *ingest.Submission, ttl time.Duration) *SubmissionReceipt {
	return &SubmissionReceipt{
		ID:                  sub.ID,
		Kernel:              sub.Kernel,
		Label:               sub.Label,
		Grid:                sub.Grid,
		Block:               sub.Block,
		Instructions:        sub.Instructions,
		Registers:           sub.Registers,
		SharedMemBytes:      sub.SharedMemBytes,
		FootprintBytes:      sub.FootprintBytes,
		MaxWarpInstructions: sub.MaxWarpInstructions,
		CreatedAt:           sub.CreatedAt,
		ExpiresAt:           sub.CreatedAt.Add(ttl),
	}
}
