// BenchmarkRunParallel measures simulator throughput on the paper's
// two regular kernel families: dense matmul (16×16 shared-memory
// tile) and the QCD-like ELL SpMV at production size (>4096 blocks —
// the shape of the paper's Fig. 11 sweeps). Each kernel runs with
// homogeneous-block replay on and off, serially (p1) and with one
// worker per host core (pN). The Stats are bit-identical across all
// combinations; only wall clock changes. Every sub-benchmark reports
// a blocks/s metric.
//
//	go test -run - -bench BenchmarkRunParallel -benchtime 2x
package gpuperf

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"gpuperf/internal/barra"
	"gpuperf/internal/gpu"
	"gpuperf/internal/kernels"
	"gpuperf/internal/sparse"
)

// benchBlockRows sizes the ELL launch at 3·175104/128 = 4104 blocks.
const benchBlockRows = 175104

// benchMatmulN sizes the matmul16 launch at (512/16)² = 1024 blocks.
const benchMatmulN = 512

func BenchmarkRunParallel(b *testing.B) {
	cfg := gpu.GTX285()

	m, err := sparse.GenQCDLike(benchBlockRows, 9, rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}
	sp, err := kernels.NewSpMV(kernels.ELL, m)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float32, m.Rows())
	rng := rand.New(rand.NewSource(43))
	for i := range x {
		x[i] = rng.Float32()
	}
	spMem, err := sp.NewMemory(x)
	if err != nil {
		b.Fatal(err)
	}
	spLaunch := sp.Launch()
	if spLaunch.Grid < 4096 {
		b.Fatalf("benchmark grid %d below the 4096-block target", spLaunch.Grid)
	}

	mm, err := DefaultRegistry().Build(cfg, "matmul16", Params{Size: benchMatmulN, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}

	// Both kernels write only their output arrays (C, y), so one
	// memory image is reused across iterations: re-running rewrites
	// the same values and the timed region is pure simulation.
	legs := []struct {
		kernel string
		l      barra.Launch
		mem    *barra.Memory
	}{
		{"matmul16", mm.Launch, mm.Mem},
		{"spmv-ell", spLaunch, spMem},
	}
	for _, leg := range legs {
		for _, mode := range []string{"replay", "noreplay"} {
			for _, p := range []int{1, runtime.NumCPU()} {
				b.Run(fmt.Sprintf("%s/%s/p%d", leg.kernel, mode, p), func(b *testing.B) {
					opt := &barra.Options{
						Parallelism:        p,
						DisableBlockReplay: mode == "noreplay",
					}
					for i := 0; i < b.N; i++ {
						if _, err := barra.Run(cfg, leg.l, leg.mem, opt); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(leg.l.Grid)*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
				})
			}
		}
	}
}
