// BenchmarkRunParallel measures the sharded execution engine's
// scaling: one large SpMV launch (ELL format, >4096 blocks — the
// shape of the paper's Fig. 11 sweeps at production size) run
// serially (p1) and with one worker per host core (pN). The Stats
// are bit-identical between the two; only wall clock changes.
//
//	go test -run - -bench BenchmarkRunParallel -benchtime 2x
package gpuperf

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"gpuperf/internal/barra"
	"gpuperf/internal/gpu"
	"gpuperf/internal/kernels"
	"gpuperf/internal/sparse"
)

// benchBlockRows sizes the ELL launch at 3·175104/128 = 4104 blocks.
const benchBlockRows = 175104

func BenchmarkRunParallel(b *testing.B) {
	m, err := sparse.GenQCDLike(benchBlockRows, 9, rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}
	sp, err := kernels.NewSpMV(kernels.ELL, m)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float32, m.Rows())
	rng := rand.New(rand.NewSource(43))
	for i := range x {
		x[i] = rng.Float32()
	}
	l := sp.Launch()
	if l.Grid < 4096 {
		b.Fatalf("benchmark grid %d below the 4096-block target", l.Grid)
	}
	cfg := gpu.GTX285()

	for _, p := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mem, err := sp.NewMemory(x)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := barra.Run(cfg, l, mem, &barra.Options{Parallelism: p}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(l.Grid)*float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
		})
	}
}
