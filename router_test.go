package gpuperf

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeWorker is a canned gpuperfd worker: it answers /healthz with a
// configurable status, echoes analyze/advise bodies back with
// recognizable headers, and records every request it saw.
type fakeWorker struct {
	name         string
	healthStatus int // status for GET /healthz

	mu   sync.Mutex
	seen []string // "METHOD path device"
}

func (fw *fakeWorker) record(r *http.Request, device string) {
	fw.mu.Lock()
	fw.seen = append(fw.seen, r.Method+" "+r.URL.Path+" "+device)
	fw.mu.Unlock()
}

func (fw *fakeWorker) handler(t *testing.T) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fw.record(r, "")
		writeJSON(w, r, fw.healthStatus, map[string]string{"status": "canned", "worker": fw.name})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		fw.record(r, "")
		writeJSON(w, r, http.StatusOK, CacheStats{Enabled: true, Hits: 2, Misses: 1, Entries: 1, Bytes: 100})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fw.record(r, "")
		w.Write([]byte("# HELP gpuperf_requests_total Fleet front-door calls by operation.\n" +
			"# TYPE gpuperf_requests_total counter\n" +
			"gpuperf_requests_total{op=\"analyze\"} 3\n"))
	})
	mux.HandleFunc("GET /v1/kernels", func(w http.ResponseWriter, r *http.Request) {
		fw.record(r, "")
		writeCachedJSON(w, r, []string{"canned-kernel-list", fw.name}, CacheBypass, staticCacheControl)
	})
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		fw.record(r, req.Device)
		writeCachedJSON(w, r, Result{Kernel: req.Kernel, Device: req.Device, PredictedSeconds: 1}, CacheMiss, "")
	})
	return mux
}

// routerOver builds a Router across the given workers with a long
// health interval (tests flip state explicitly via markDown).
func routerOver(t *testing.T, opt RouterOptions) *Router {
	t.Helper()
	opt.HealthInterval = time.Hour
	rt, err := NewRouter(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestRouterWorkerValidation: URL normalization, duplicate and empty
// rejection.
func TestRouterWorkerValidation(t *testing.T) {
	if _, err := NewRouter(RouterOptions{}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewRouter(RouterOptions{Workers: []string{"http://a:1", " "}}); err == nil {
		t.Error("blank worker URL accepted")
	}
	if _, err := NewRouter(RouterOptions{Workers: []string{"http://a:1/", "a:1"}}); err == nil {
		t.Error("duplicate worker (after normalization) accepted")
	}
	rt := routerOver(t, RouterOptions{Workers: []string{"127.0.0.1:1/", " http://127.0.0.1:2 "}})
	want := []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}
	got := rt.Workers()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("normalized workers %v, want %v", got, want)
	}
}

// TestRouterShardTable: the shard map is deterministic, keyed by
// hardware fingerprint (identical hardware shares a shard regardless
// of name), consistent between ShardFor and Health().Shards, and
// spreads the default catalog across both workers.
func TestRouterShardTable(t *testing.T) {
	// Unreachable fixed URLs: shard math needs no live workers, and
	// fixed strings keep the rendezvous outcome deterministic.
	rt := routerOver(t, RouterOptions{Workers: []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}})

	h := rt.Health()
	if len(h.Shards) != len(rt.catalog.Profiles()) {
		t.Fatalf("shard table has %d entries, want one per catalog device", len(h.Shards))
	}
	used := map[string]int{}
	for _, p := range rt.catalog.Profiles() {
		wk, err := rt.ShardFor(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		if wk != h.Shards[p.Name] {
			t.Errorf("%s: ShardFor says %s, Health says %s", p.Name, wk, h.Shards[p.Name])
		}
		if again, _ := rt.ShardFor(p.Name); again != wk {
			t.Errorf("%s: shard not stable", p.Name)
		}
		used[wk]++
	}
	if len(used) != 2 {
		t.Errorf("all shards landed on one worker: %v", used)
	}
	// Same fingerprint, same owner — renames cannot move a shard.
	byFP := map[string]string{}
	for _, p := range rt.catalog.Profiles() {
		if prev, ok := byFP[p.Fingerprint]; ok && prev != h.Shards[p.Name] {
			t.Errorf("fingerprint %s owned by both %s and %s", p.Fingerprint, prev, h.Shards[p.Name])
		}
		byFP[p.Fingerprint] = h.Shards[p.Name]
	}
	// Empty device name resolves like a worker would: to the default.
	def, err := rt.ShardFor("")
	if err != nil {
		t.Fatal(err)
	}
	if want := h.Shards[DefaultCatalogDevice]; def != want {
		t.Errorf("default shard %s, want %s", def, want)
	}
}

// TestRouterProxyByDevice: a single-device request lands on exactly
// its shard owner with the worker's caching headers relayed; a down
// shard fails fast with 503 and is never rerouted; an unknown device
// is 404 at the router.
func TestRouterProxyByDevice(t *testing.T) {
	fws := []*fakeWorker{
		{name: "w1", healthStatus: http.StatusOK},
		{name: "w2", healthStatus: http.StatusOK},
	}
	var urls []string
	byURL := map[string]*fakeWorker{}
	for _, fw := range fws {
		srv := httptest.NewServer(fw.handler(t))
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
		byURL[srv.URL] = fw
	}
	rt := routerOver(t, RouterOptions{Workers: urls, DefaultDevice: "gtx285-6sm"})
	h := rt.Handler()

	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	owner, err := rt.ShardFor("gtx285")
	if err != nil {
		t.Fatal(err)
	}
	rec := post(`{"kernel":"matmul16","device":"gtx285"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("proxied analyze: %d (%s)", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Cache"); got != "MISS" {
		t.Errorf("X-Cache not relayed: %q", got)
	}
	if rec.Header().Get("ETag") == "" {
		t.Errorf("ETag not relayed")
	}
	saw := byURL[owner].seen[len(byURL[owner].seen)-1]
	if saw != "POST /v1/analyze gtx285" {
		t.Errorf("owner %s saw %q", owner, saw)
	}
	for u, fw := range byURL {
		if u == owner {
			continue
		}
		for _, s := range fw.seen {
			if strings.Contains(s, "/v1/analyze") {
				t.Errorf("non-owner %s handled %q", u, s)
			}
		}
	}

	// Empty device routes to the router's default.
	defOwner, _ := rt.ShardFor("")
	before := len(byURL[defOwner].seen)
	if rec := post(`{"kernel":"matmul16"}`); rec.Code != http.StatusOK {
		t.Fatalf("default-device analyze: %d", rec.Code)
	}
	if saw := byURL[defOwner].seen[len(byURL[defOwner].seen)-1]; len(byURL[defOwner].seen) == before || !strings.Contains(saw, "analyze") {
		t.Errorf("default shard %s did not receive the request (saw %v)", defOwner, byURL[defOwner].seen)
	}

	// Unknown device: refused at the router, no worker bothered.
	if rec := post(`{"kernel":"matmul16","device":"nope"}`); rec.Code != http.StatusNotFound {
		t.Errorf("unknown device: %d, want 404", rec.Code)
	}

	// Down shard: fail fast, never rerouted to the survivor.
	rt.markDown(owner)
	rec = post(`{"kernel":"matmul16","device":"gtx285"}`)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "down") {
		t.Errorf("down shard: %d %q, want 503 ...down", rec.Code, rec.Body)
	}
	for u, fw := range byURL {
		if u == owner {
			continue
		}
		for _, s := range fw.seen {
			if strings.Contains(s, "gtx285 ") {
				t.Errorf("request for the dead shard rerouted to %s (%q)", u, s)
			}
		}
	}
	// And the router's own healthz reports the degradation.
	req := httptest.NewRequest("GET", "/healthz", nil)
	hrec := httptest.NewRecorder()
	h.ServeHTTP(hrec, req)
	if hrec.Code != http.StatusServiceUnavailable || !strings.Contains(hrec.Body.String(), "degraded") {
		t.Errorf("degraded healthz: %d %q", hrec.Code, hrec.Body)
	}
}

// TestRouterStartingWorkerIsRoutable: a worker answering 503
// ("starting", still calibrating) is up — it takes traffic — just not
// ready.
func TestRouterStartingWorkerIsRoutable(t *testing.T) {
	fw := &fakeWorker{name: "w1", healthStatus: http.StatusServiceUnavailable}
	srv := httptest.NewServer(fw.handler(t))
	t.Cleanup(srv.Close)
	rt := routerOver(t, RouterOptions{Workers: []string{srv.URL}})

	h := rt.Health()
	if h.Status != "ok" || !h.Workers[0].Up || h.Workers[0].Ready {
		t.Errorf("starting worker: %+v, want up && !ready with status ok", h)
	}
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(`{"kernel":"matmul16"}`))
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("analyze against a starting worker: %d, want proxied 200", rec.Code)
	}
}

// TestRouterStatsAggregation: /v1/stats sums the per-worker counters.
func TestRouterStatsAggregation(t *testing.T) {
	var urls []string
	for _, name := range []string{"w1", "w2"} {
		srv := httptest.NewServer((&fakeWorker{name: name, healthStatus: http.StatusOK}).handler(t))
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	rt := routerOver(t, RouterOptions{Workers: urls})
	req := httptest.NewRequest("GET", "/v1/stats", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	var st CacheStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Hits != 4 || st.Misses != 2 || st.Entries != 2 || st.Bytes != 200 {
		t.Errorf("aggregated stats %+v, want sums of two canned workers", st)
	}
}

// TestRouterStaticProxy: listings come from any up worker with the
// caching headers intact, and If-None-Match rides through for
// end-to-end 304s.
func TestRouterStaticProxy(t *testing.T) {
	fw := &fakeWorker{name: "w1", healthStatus: http.StatusOK}
	srv := httptest.NewServer(fw.handler(t))
	t.Cleanup(srv.Close)
	rt := routerOver(t, RouterOptions{Workers: []string{srv.URL}})
	h := rt.Handler()

	req := httptest.NewRequest("GET", "/v1/kernels", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "canned-kernel-list") {
		t.Fatalf("proxied kernels: %d %q", rec.Code, rec.Body)
	}
	etag := rec.Header().Get("ETag")
	if etag == "" || !strings.Contains(rec.Header().Get("Cache-Control"), "max-age") {
		t.Errorf("caching headers lost in the hop: %v", rec.Header())
	}
	req = httptest.NewRequest("GET", "/v1/kernels", nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Errorf("end-to-end revalidation: %d with %d body bytes, want bare 304", rec.Code, rec.Body.Len())
	}

	rt.markDown(srv.URL)
	req = httptest.NewRequest("GET", "/v1/kernels", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("no worker up: %d, want 503", rec.Code)
	}
}

// TestRouterEndToEnd drives a router over two REAL workers (full
// NewHandler fleets) exactly as smoke.sh does: analyze MISS then HIT
// through the router, a cross-shard compare byte-identical to a local
// fleet's, router X-Cache HIT on the repeat, and shard purity — no
// worker ever opened a session outside its shard.
func TestRouterEndToEnd(t *testing.T) {
	a := testAnalyzer(t)
	calDir := t.TempDir()
	if err := a.cal.SaveCachedCalibration(calDir); err != nil {
		t.Fatal(err)
	}
	newWorker := func() *Fleet {
		return NewFleet(FleetOptions{DefaultDevice: "gtx285-6sm", CalibrationDir: calDir})
	}
	fleets := []*Fleet{newWorker(), newWorker()}
	var urls []string
	byURL := map[string]*Fleet{}
	for _, f := range fleets {
		srv := httptest.NewServer(NewHandler(f))
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
		byURL[srv.URL] = f
	}
	rt := routerOver(t, RouterOptions{Workers: urls, DefaultDevice: "gtx285-6sm"})
	h := rt.Handler()

	do := func(path, body string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d (%s)", path, rec.Code, rec.Body)
		}
		return rec
	}

	// Analyze through the router: MISS then HIT, byte-identical.
	const analyzeBody = `{"kernel":"matmul16","size":64,"seed":7}`
	cold := do("/v1/analyze", analyzeBody)
	warm := do("/v1/analyze", analyzeBody)
	if cold.Header().Get("X-Cache") != "MISS" || warm.Header().Get("X-Cache") != "HIT" {
		t.Errorf("X-Cache through router: %q then %q, want MISS then HIT",
			cold.Header().Get("X-Cache"), warm.Header().Get("X-Cache"))
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Error("router-proxied hit differs from the miss")
	}

	// Cross-shard compare, twice: the repeat is fully cache-served.
	const compareBody = `{"kernel":"matmul16","size":64,"devices":["gtx285-6sm","gtx285-3sm"]}`
	c1 := do("/v1/compare", compareBody)
	c2 := do("/v1/compare", compareBody)
	if c2.Header().Get("X-Cache") != "HIT" {
		t.Errorf("repeat compare X-Cache %q, want HIT (all shards hit)", c2.Header().Get("X-Cache"))
	}
	if !bytes.Equal(c1.Body.Bytes(), c2.Body.Bytes()) {
		t.Error("repeat comparison differs")
	}

	// Byte-identical to a local fleet answering the same compare.
	local := NewFleet(FleetOptions{DefaultDevice: "gtx285-6sm", CalibrationDir: calDir})
	cmp, _, err := local.CompareCached(httptest.NewRequest("POST", "/", nil).Context(),
		CompareRequest{Kernel: "matmul16", Size: 64, Devices: []string{"gtx285-6sm", "gtx285-3sm"}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := encodeJSON(cmp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Body.Bytes(), want) {
		t.Errorf("proxied comparison differs from local:\n%s\nvs\n%s", c1.Body.Bytes(), want)
	}

	// Shard purity: every session a worker opened belongs to its shard.
	for url, f := range byURL {
		f.mu.Lock()
		for name := range f.sessions {
			owner, err := rt.ShardFor(name)
			if err != nil {
				t.Errorf("worker %s opened session for unresolvable %q", url, name)
				continue
			}
			if owner != url {
				t.Errorf("worker %s opened session %q owned by %s", url, name, owner)
			}
		}
		f.mu.Unlock()
	}

	// The aggregated stats see the traffic.
	req := httptest.NewRequest("GET", "/v1/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var st CacheStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("aggregated stats after traffic: %+v", st)
	}
}
