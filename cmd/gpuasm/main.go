// Command gpuasm is the Decuda/cudasm-style binary toolchain: it
// assembles kernel text into CUBIN-like containers, disassembles
// containers back to text, and rewrites a kernel inside an existing
// container — the binary-modification loop the paper's CUBIN
// generator performs to build microbenchmarks the compiler cannot
// interfere with.
//
// Usage:
//
//	gpuasm as  -o out.gcub in.s          assemble text to container
//	gpuasm dis in.gcub                   disassemble to stdout
//	gpuasm rewrite -kernel name -with repl.s -o out.gcub in.gcub
//	gpuasm gen -kind ichain|scopy|gstream -o out.gcub   generate a
//	                                     microbenchmark kernel
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuperf/internal/asm"
	"gpuperf/internal/cubin"
	"gpuperf/internal/isa"
	"gpuperf/internal/microbench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "as":
		err = cmdAs(os.Args[2:])
	case "dis":
		err = cmdDis(os.Args[2:])
	case "rewrite":
		err = cmdRewrite(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpuasm: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gpuasm as|dis|rewrite|gen ...")
	os.Exit(2)
}

func cmdAs(args []string) error {
	fs := flag.NewFlagSet("as", flag.ExitOnError)
	out := fs.String("o", "out.gcub", "output container")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("as wants one input file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	progs, err := asm.AssembleAll(string(src))
	if err != nil {
		return err
	}
	c := &cubin.Container{Kernels: progs}
	raw, err := c.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(*out, raw, 0o644)
}

func cmdDis(args []string) error {
	fs := flag.NewFlagSet("dis", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("dis wants one container file")
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	c, err := cubin.Unmarshal(raw)
	if err != nil {
		return err
	}
	for _, k := range c.Kernels {
		fmt.Print(asm.Disassemble(k))
		fmt.Println()
	}
	return nil
}

func cmdRewrite(args []string) error {
	fs := flag.NewFlagSet("rewrite", flag.ExitOnError)
	kernel := fs.String("kernel", "", "kernel name to replace")
	with := fs.String("with", "", "assembler file with the replacement body")
	out := fs.String("o", "out.gcub", "output container")
	fs.Parse(args)
	if fs.NArg() != 1 || *kernel == "" || *with == "" {
		return fmt.Errorf("rewrite wants -kernel, -with and one container file")
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	c, err := cubin.Unmarshal(raw)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*with)
	if err != nil {
		return err
	}
	repl, err := asm.Assemble(string(src))
	if err != nil {
		return err
	}
	if err := c.Rewrite(*kernel, repl); err != nil {
		return err
	}
	raw2, err := c.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(*out, raw2, 0o644)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "ichain", "ichain | scopy | gstream")
	op := fs.String("op", "fmad", "instruction for ichain")
	n := fs.Int("n", 256, "chain length / iterations / transactions")
	stride := fs.Int("stride", 1, "word stride for scopy")
	threads := fs.Int("threads", 7680, "total threads for gstream")
	out := fs.String("o", "bench.gcub", "output container")
	fs.Parse(args)

	var prog *isa.Program
	var err error
	switch *kind {
	case "ichain":
		opcode, ok := opByName(*op)
		if !ok {
			return fmt.Errorf("unknown op %q", *op)
		}
		prog, err = microbench.InstrChain(opcode, *n)
	case "scopy":
		prog, err = microbench.SharedCopy(*n, *stride)
	case "gstream":
		prog, err = microbench.GlobalStream(*n, *threads, 1<<22)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	c := &cubin.Container{Kernels: []*isa.Program{prog}}
	raw, err := c.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(*out, raw, 0o644)
}

func opByName(name string) (isa.Opcode, bool) {
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		if op.String() == name {
			return op, true
		}
	}
	return 0, false
}
