// Command gpuasm is the Decuda/cudasm-style binary toolchain: it
// assembles kernel text into CUBIN-like containers, disassembles
// containers back to text, and rewrites a kernel inside an existing
// container — the binary-modification loop the paper's CUBIN
// generator performs to build microbenchmarks the compiler cannot
// interfere with.
//
// Usage:
//
//	gpuasm as  -o out.gcub [-roundtrip] in.s   assemble text to container
//	gpuasm dis in.gcub                   disassemble to stdout
//	gpuasm rewrite -kernel name -with repl.s -o out.gcub in.gcub
//	gpuasm gen -kind ichain|scopy|gstream -o out.gcub   generate a
//	                                     microbenchmark kernel
//
// -roundtrip proves the toolchain closes over itself: after
// assembling, the container is disassembled and the text reassembled,
// and the two containers must be byte-identical — any mismatch is a
// printed diff and a non-zero exit. Fuzzing keeps this property
// honest; the flag makes it checkable on any real input.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"gpuperf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "as":
		err = cmdAs(os.Args[2:])
	case "dis":
		err = cmdDis(os.Args[2:])
	case "rewrite":
		err = cmdRewrite(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpuasm: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gpuasm as|dis|rewrite|gen ...")
	os.Exit(2)
}

func cmdAs(args []string) error {
	fs := flag.NewFlagSet("as", flag.ExitOnError)
	out := fs.String("o", "out.gcub", "output container")
	roundtrip := fs.Bool("roundtrip", false, "after assembling, disassemble and reassemble; fail unless the containers are byte-identical")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("as wants one input file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	raw, err := gpuperf.AssembleText(string(src))
	if err != nil {
		return err
	}
	if *roundtrip {
		if err := checkRoundtrip(raw); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gpuasm: roundtrip ok (%d bytes)\n", len(raw))
	}
	return os.WriteFile(*out, raw, 0o644)
}

// checkRoundtrip asserts assemble → disassemble → reassemble is the
// identity on container bytes, reporting the first divergence.
func checkRoundtrip(raw []byte) error {
	text, err := gpuperf.DisassembleContainer(raw)
	if err != nil {
		return fmt.Errorf("roundtrip: disassembling the fresh container: %v", err)
	}
	raw2, err := gpuperf.AssembleText(text)
	if err != nil {
		return fmt.Errorf("roundtrip: reassembling the disassembly: %v", err)
	}
	if bytes.Equal(raw, raw2) {
		return nil
	}
	if len(raw) != len(raw2) {
		return fmt.Errorf("roundtrip: container size changed: %d -> %d bytes", len(raw), len(raw2))
	}
	for i := range raw {
		if raw[i] != raw2[i] {
			return fmt.Errorf("roundtrip: containers diverge at byte %d: %#02x -> %#02x", i, raw[i], raw2[i])
		}
	}
	return nil
}

func cmdDis(args []string) error {
	fs := flag.NewFlagSet("dis", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("dis wants one container file")
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	text, err := gpuperf.DisassembleContainer(raw)
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

func cmdRewrite(args []string) error {
	fs := flag.NewFlagSet("rewrite", flag.ExitOnError)
	kernel := fs.String("kernel", "", "kernel name to replace")
	with := fs.String("with", "", "assembler file with the replacement body")
	out := fs.String("o", "out.gcub", "output container")
	fs.Parse(args)
	if fs.NArg() != 1 || *kernel == "" || *with == "" {
		return fmt.Errorf("rewrite wants -kernel, -with and one container file")
	}
	raw, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*with)
	if err != nil {
		return err
	}
	raw2, err := gpuperf.RewriteKernel(raw, *kernel, string(src))
	if err != nil {
		return err
	}
	return os.WriteFile(*out, raw2, 0o644)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "ichain", "ichain | scopy | gstream")
	op := fs.String("op", "fmad", "instruction for ichain")
	n := fs.Int("n", 256, "chain length / iterations / transactions")
	stride := fs.Int("stride", 1, "word stride for scopy")
	threads := fs.Int("threads", 7680, "total threads for gstream")
	out := fs.String("o", "bench.gcub", "output container")
	fs.Parse(args)

	raw, err := gpuperf.Microbenchmark(gpuperf.MicrobenchSpec{
		Kind:    *kind,
		Op:      *op,
		N:       *n,
		Stride:  *stride,
		Threads: *threads,
	})
	if err != nil {
		return err
	}
	return os.WriteFile(*out, raw, 0o644)
}
