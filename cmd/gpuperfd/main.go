// Command gpuperfd serves the analysis workflow over HTTP: one Fleet
// of per-device Analyzer sessions (one cached calibration each)
// handling concurrent requests behind a shared admission limit, every
// Analyze/Advise/Compare memoized by a content-addressed result
// cache with singleflight dedup.
//
//	gpuperfd [-addr :8080] [-devices gtx285,gtx285-6sm] [-cal-dir dir]
//	         [-cache-dir dir] [-cache-mem bytes] [-p workers]
//	         [-precalibrate] [-subs-dir dir] [-subs-max n]
//	         [-subs-mem bytes] [-subs-ttl 1h]
//	gpuperfd -route http://w1:8098,http://w2:8099 [-addr :8080]
//	         [-devices ...]
//
// Endpoints:
//
//	GET  /healthz      readiness probe (JSON; 503 until the default
//	                   device's calibration is loaded or built)
//	GET  /v1/kernels   list the registry's kernels with their variant
//	                   families and realized optimizations (resident
//	                   user submissions included)
//	POST /v1/kernels   submit a user kernel: assembly text or a GCUB
//	                   container plus launch geometry and declared
//	                   buffers → a receipt whose id is the kernel
//	                   name to analyze (400 names the violated
//	                   admission ceiling)
//	DELETE /v1/kernels/{id}
//	                   evict a submission (204; 404 for unknown ids)
//	GET  /v1/devices   list the served device profiles (name,
//	                   hardware fingerprint, knobs, peaks)
//	GET  /v1/stats     result-cache counters (hits, misses,
//	                   coalesced, evictions, in-flight)
//	POST /v1/analyze   {"kernel":"matmul16","size":64,"device":"gtx285-6sm"} → Result
//	POST /v1/advise    same body → Advice (ranked counterfactual
//	                   what-if scenarios with predicted speedups)
//	POST /v1/measure   same body → Measurement (timing simulator
//	                   only; no calibration, no result cache)
//	POST /v1/compare   {"kernel":"spmv-ell","devices":["gtx285-6sm","gtx285"]}
//	                   → Comparison (ranked across the device set)
//
// -devices picks which catalog entries to serve (the first is the
// default for requests that name none). -cal-dir points at an
// on-disk calibration cache directory — one file per device
// fingerprint — so restarts skip recalibration. -cache-dir does the
// same for analysis results: one content-addressed slot per request
// fingerprint, so repeats (even across restarts) are hits, with
// -cache-mem bounding the in-memory tier. Aborted client connections
// cancel their in-flight simulations.
//
// -subs-dir persists user submissions the same way (one slot per
// submission id), so accepted kernels survive restarts; -subs-max,
// -subs-mem and -subs-ttl bound the resident set (count, bytes,
// lifetime — zeros keep the library defaults).
//
// With -route the daemon is a ROUTER instead of a worker: it
// consistent-hashes each request's device fingerprint across the
// given worker URLs (each worker owns a stable shard, so
// calibrations and caches never duplicate), scatter-gathers
// cross-shard comparisons, health-checks the workers via their
// /healthz, and fails fast with 503 when a shard is down. The worker
// flags (-cal-dir, -cache-dir, -cache-mem, -p, -precalibrate) are
// ignored in router mode.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpuperf"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	devices := flag.String("devices", gpuperf.DefaultCatalogDevice,
		"comma-separated catalog devices to serve; the first is the default for requests naming none")
	calDir := flag.String("cal-dir", "", "calibration cache directory (one file per device fingerprint; loaded if present, written after calibrating)")
	cacheDir := flag.String("cache-dir", "", "result cache directory (one content-addressed slot per request fingerprint; hits survive restarts)")
	cacheMem := flag.Int64("cache-mem", 0, "in-memory result cache budget in bytes (0 = 32 MiB default, negative = disk-only)")
	parallel := flag.Int("p", 0, "functional-simulation worker goroutines per request (0 = all cores)")
	precalibrate := flag.Bool("precalibrate", false, "calibrate every served device before accepting traffic instead of on first use")
	noReplay := flag.Bool("no-replay", false, "force live per-block simulation for every request, bypassing homogeneous-block replay (results are bit-identical; this is the slow path)")
	subsDir := flag.String("subs-dir", "", "submission store directory (one slot per user-submitted kernel; accepted submissions survive restarts)")
	subsMax := flag.Int("subs-max", 0, "max resident user submissions (0 = library default)")
	subsMem := flag.Int64("subs-mem", 0, "submission store byte budget (0 = library default)")
	subsTTL := flag.Duration("subs-ttl", 0, "submission time-to-live, e.g. 30m (0 = library default)")
	route := flag.String("route", "", "comma-separated worker base URLs: run as a router sharding requests by device fingerprint instead of serving analyses")
	flag.Parse()

	// Serve exactly the named catalog entries: the fleet's catalog is
	// a subset of the defaults, so GET /v1/devices advertises only
	// what the operator chose to expose. In router mode the same
	// catalog drives the shard table — it must match the workers'.
	defaults := gpuperf.DefaultCatalog()
	served := gpuperf.NewDeviceCatalog()
	names := strings.Split(*devices, ",")
	for i, n := range names {
		names[i] = strings.TrimSpace(n)
		dev, err := defaults.Resolve(names[i])
		if err != nil {
			log.Fatalf("gpuperfd: -devices: %v", err)
		}
		if err := served.Register(names[i], dev); err != nil {
			log.Fatalf("gpuperfd: -devices: %v", err)
		}
	}

	var handler http.Handler
	if *route != "" {
		workers := strings.Split(*route, ",")
		rt, err := gpuperf.NewRouter(gpuperf.RouterOptions{
			Workers:       workers,
			Catalog:       served,
			DefaultDevice: names[0],
		})
		if err != nil {
			log.Fatalf("gpuperfd: -route: %v", err)
		}
		defer rt.Close()
		handler = rt.Handler()
		log.Printf("gpuperfd: routing devices %v (default %s) across workers %v", names, names[0], rt.Workers())
		for name, wk := range rt.Health().Shards {
			log.Printf("gpuperfd: shard %s -> %s", name, wk)
		}
	} else {
		f := gpuperf.NewFleet(gpuperf.FleetOptions{
			Catalog:            served,
			DefaultDevice:      names[0],
			Parallelism:        *parallel,
			CalibrationDir:     *calDir,
			CacheDir:           *cacheDir,
			CacheBytes:         *cacheMem,
			DisableBlockReplay: *noReplay,
			SubmissionDir:      *subsDir,
			SubmissionLimits: gpuperf.SubmissionLimits{
				MaxCount: *subsMax,
				MaxBytes: *subsMem,
				TTL:      *subsTTL,
			},
		})
		handler = gpuperf.NewHandler(f)
		log.Printf("gpuperfd: devices %v (default %s), kernels %v", names, names[0], f.Registry().Names())
		if *cacheDir != "" {
			log.Printf("gpuperfd: result cache at %s", *cacheDir)
		}
		if *subsDir != "" {
			log.Printf("gpuperfd: submission store at %s (%d resident)", *subsDir, len(f.Submissions()))
		}
		if *precalibrate {
			precalibrateAll(f, names, *calDir)
		}
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: logRequests(handler),
		// Bound hostile/stalled connections. No WriteTimeout: a cold
		// first analyze legitimately takes tens of seconds while the
		// model calibrates.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("gpuperfd: listening on %s", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("gpuperfd: %v", err)
	case <-stop:
		log.Printf("gpuperfd: shutting down")
		// Give in-flight analyses time to finish: a cold request can
		// legitimately run tens of seconds (calibration + simulation).
		ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				log.Printf("gpuperfd: shutdown grace expired; aborting in-flight requests")
			} else {
				log.Printf("gpuperfd: shutdown: %v", err)
			}
		}
	}
}

// precalibrateAll calibrates every served device before the listener
// opens, so /healthz answers ready from the first probe.
func precalibrateAll(f *gpuperf.Fleet, names []string, calDir string) {
	for _, n := range names {
		a, err := f.Session(n)
		if err != nil {
			log.Fatalf("gpuperfd: %v", err)
		}
		log.Printf("gpuperfd: calibrating %s...", n)
		if err := a.Calibrate(); err != nil {
			log.Fatalf("gpuperfd: calibration of %s: %v", n, err)
		}
		switch {
		case a.CalibrationFromCache():
			log.Printf("gpuperfd: %s calibration loaded from %s", n, calDir)
		case a.CalibrationSaveError() != nil:
			log.Printf("gpuperfd: %s calibration ready (cache not saved: %v)", n, a.CalibrationSaveError())
		default:
			log.Printf("gpuperfd: %s calibration ready", n)
		}
	}
}

// logRequests is a minimal access log: method, path, duration.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%s)", r.Method, r.URL.Path, fmtDuration(time.Since(start)))
	})
}

func fmtDuration(d time.Duration) string {
	if d < time.Second {
		return d.Round(time.Millisecond).String()
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}
