// Command gpuperfd serves the analysis workflow over HTTP: one
// Analyzer session (one device, one cached calibration) handling
// concurrent requests.
//
//	gpuperfd [-addr :8080] [-sms n] [-cal file] [-p workers]
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /v1/kernels   list the registry's kernels with their variant
//	                   families and realized optimizations
//	POST /v1/analyze   {"kernel":"matmul16","size":64,"seed":7} → Result
//	POST /v1/advise    same body → Advice (ranked counterfactual
//	                   what-if scenarios with predicted speedups)
//
// -sms slices the device to n streaming multiprocessors (per-SM
// behaviour is unchanged; calibration and small workloads run
// faster). -cal points at an on-disk calibration cache so restarts
// skip recalibration. Aborted client connections cancel their
// in-flight simulations.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpuperf"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sms := flag.Int("sms", 0, "slice the device to this many SMs (0 = full chip)")
	calFile := flag.String("cal", "", "calibration cache file (loaded if present, written after calibrating)")
	parallel := flag.Int("p", 0, "functional-simulation worker goroutines per request (0 = all cores)")
	precalibrate := flag.Bool("precalibrate", false, "calibrate before accepting traffic instead of on the first request")
	flag.Parse()

	dev := gpuperf.SliceDevice(gpuperf.DefaultDevice(), *sms)
	a := gpuperf.NewAnalyzer(gpuperf.Options{
		Device:          dev,
		Parallelism:     *parallel,
		CalibrationPath: *calFile,
	})
	log.Printf("gpuperfd: device %s (%d SMs), kernels %v", dev.Name, dev.NumSMs, a.Registry().Names())
	if *precalibrate {
		log.Printf("gpuperfd: calibrating...")
		if err := a.Calibrate(); err != nil {
			log.Fatalf("gpuperfd: calibration: %v", err)
		}
		if a.CalibrationFromCache() {
			log.Printf("gpuperfd: calibration loaded from %s", *calFile)
		} else if err := a.CalibrationSaveError(); err != nil {
			log.Printf("gpuperfd: calibration ready (cache not saved: %v)", err)
		} else {
			log.Printf("gpuperfd: calibration ready")
		}
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: logRequests(gpuperf.NewHandler(a)),
		// Bound hostile/stalled connections. No WriteTimeout: a cold
		// first analyze legitimately takes tens of seconds while the
		// model calibrates.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("gpuperfd: listening on %s", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("gpuperfd: %v", err)
	case <-stop:
		log.Printf("gpuperfd: shutting down")
		// Give in-flight analyses time to finish: a cold request can
		// legitimately run tens of seconds (calibration + simulation).
		ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				log.Printf("gpuperfd: shutdown grace expired; aborting in-flight requests")
			} else {
				log.Printf("gpuperfd: shutdown: %v", err)
			}
		}
	}
}

// logRequests is a minimal access log: method, path, duration.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%s)", r.Method, r.URL.Path, fmtDuration(time.Since(start)))
	})
}

func fmtDuration(d time.Duration) string {
	if d < time.Second {
		return d.Round(time.Millisecond).String()
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}
