// Command gpuperfd serves the analysis workflow over HTTP: one Fleet
// of per-device Analyzer sessions (one cached calibration each)
// handling concurrent requests behind a shared admission limit, every
// Analyze/Advise/Compare memoized by a content-addressed result
// cache with singleflight dedup.
//
//	gpuperfd [-addr :8080] [-devices gtx285,gtx285-6sm] [-cal-dir dir]
//	         [-cache-dir dir] [-cache-mem bytes] [-p workers]
//	         [-precalibrate] [-subs-dir dir] [-subs-max n]
//	         [-subs-mem bytes] [-subs-ttl 1h]
//	         [-log-format text|json] [-slow-ms n] [-pprof 127.0.0.1:6060]
//	gpuperfd -route http://w1:8098,http://w2:8099 [-addr :8080]
//	         [-devices ...]
//
// Endpoints:
//
//	GET  /healthz      readiness probe (JSON; 503 until the default
//	                   device's calibration is loaded or built)
//	GET  /metrics      Prometheus text exposition (on a router: its
//	                   own series plus every up worker's, each worker
//	                   sample labeled worker="<url>")
//	GET  /v1/kernels   list the registry's kernels with their variant
//	                   families and realized optimizations (resident
//	                   user submissions included)
//	POST /v1/kernels   submit a user kernel: assembly text or a GCUB
//	                   container plus launch geometry and declared
//	                   buffers → a receipt whose id is the kernel
//	                   name to analyze (400 names the violated
//	                   admission ceiling)
//	DELETE /v1/kernels/{id}
//	                   evict a submission (204; 404 for unknown ids)
//	GET  /v1/devices   list the served device profiles (name,
//	                   hardware fingerprint, knobs, peaks)
//	GET  /v1/stats     result-cache counters (hits, misses,
//	                   coalesced, evictions, in-flight) plus uptime
//	                   and per-operation request counts
//	POST /v1/analyze   {"kernel":"matmul16","size":64,"device":"gtx285-6sm"} → Result
//	POST /v1/advise    same body → Advice (ranked counterfactual
//	                   what-if scenarios with predicted speedups)
//	POST /v1/measure   same body → Measurement (timing simulator
//	                   only; no calibration, no result cache)
//	POST /v1/compare   {"kernel":"spmv-ell","devices":["gtx285-6sm","gtx285"]}
//	                   → Comparison (ranked across the device set)
//
// -devices picks which catalog entries to serve (the first is the
// default for requests that name none). -cal-dir points at an
// on-disk calibration cache directory — one file per device
// fingerprint — so restarts skip recalibration. -cache-dir does the
// same for analysis results: one content-addressed slot per request
// fingerprint, so repeats (even across restarts) are hits, with
// -cache-mem bounding the in-memory tier. Aborted client connections
// cancel their in-flight simulations.
//
// -subs-dir persists user submissions the same way (one slot per
// submission id), so accepted kernels survive restarts; -subs-max,
// -subs-mem and -subs-ttl bound the resident set (count, bytes,
// lifetime — zeros keep the library defaults).
//
// Observability: every response carries X-Request-ID (the inbound
// header's value if the client sent one, a fresh id otherwise) and
// every request emits one structured access-log line keyed by that
// id. -log-format picks the slog handler (text for humans, json for
// shippers). Requests slower than -slow-ms additionally log their
// span tree — calibration, admission, build, engine, model, verify —
// at WARN, so "why was this one slow" is answerable from the log
// alone. -pprof serves net/http/pprof on a SEPARATE listener
// (loopback by default; never exposed on the service address).
//
// With -route the daemon is a ROUTER instead of a worker: it
// consistent-hashes each request's device fingerprint across the
// given worker URLs (each worker owns a stable shard, so
// calibrations and caches never duplicate), scatter-gathers
// cross-shard comparisons, health-checks the workers via their
// /healthz, and fails fast with 503 when a shard is down. The worker
// flags (-cal-dir, -cache-dir, -cache-mem, -p, -precalibrate) are
// ignored in router mode.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpuperf"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	devices := flag.String("devices", gpuperf.DefaultCatalogDevice,
		"comma-separated catalog devices to serve; the first is the default for requests naming none")
	calDir := flag.String("cal-dir", "", "calibration cache directory (one file per device fingerprint; loaded if present, written after calibrating)")
	cacheDir := flag.String("cache-dir", "", "result cache directory (one content-addressed slot per request fingerprint; hits survive restarts)")
	cacheMem := flag.Int64("cache-mem", 0, "in-memory result cache budget in bytes (0 = 32 MiB default, negative = disk-only)")
	parallel := flag.Int("p", 0, "functional-simulation worker goroutines per request (0 = all cores)")
	precalibrate := flag.Bool("precalibrate", false, "calibrate every served device before accepting traffic instead of on first use")
	noReplay := flag.Bool("no-replay", false, "force live per-block simulation for every request, bypassing homogeneous-block replay (results are bit-identical; this is the slow path)")
	subsDir := flag.String("subs-dir", "", "submission store directory (one slot per user-submitted kernel; accepted submissions survive restarts)")
	subsMax := flag.Int("subs-max", 0, "max resident user submissions (0 = library default)")
	subsMem := flag.Int64("subs-mem", 0, "submission store byte budget (0 = library default)")
	subsTTL := flag.Duration("subs-ttl", 0, "submission time-to-live, e.g. 30m (0 = library default)")
	route := flag.String("route", "", "comma-separated worker base URLs: run as a router sharding requests by device fingerprint instead of serving analyses")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	slowMS := flag.Int("slow-ms", 10000, "log the span tree of requests slower than this many milliseconds (0 disables)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this SEPARATE address (e.g. 127.0.0.1:6060); empty disables")
	flag.Parse()

	var h slog.Handler
	switch *logFormat {
	case "text":
		h = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	default:
		slog.Error("gpuperfd: -log-format must be text or json", "got", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *pprofAddr != "" {
		go servePprof(logger, *pprofAddr)
	}

	tel := gpuperf.Telemetry{
		Logger:      logger,
		SlowRequest: time.Duration(*slowMS) * time.Millisecond,
	}

	// Serve exactly the named catalog entries: the fleet's catalog is
	// a subset of the defaults, so GET /v1/devices advertises only
	// what the operator chose to expose. In router mode the same
	// catalog drives the shard table — it must match the workers'.
	defaults := gpuperf.DefaultCatalog()
	served := gpuperf.NewDeviceCatalog()
	names := strings.Split(*devices, ",")
	for i, n := range names {
		names[i] = strings.TrimSpace(n)
		dev, err := defaults.Resolve(names[i])
		if err != nil {
			fatal("gpuperfd: -devices", "err", err)
		}
		if err := served.Register(names[i], dev); err != nil {
			fatal("gpuperfd: -devices", "err", err)
		}
	}

	var handler http.Handler
	if *route != "" {
		workers := strings.Split(*route, ",")
		rt, err := gpuperf.NewRouter(gpuperf.RouterOptions{
			Workers:       workers,
			Catalog:       served,
			DefaultDevice: names[0],
			Telemetry:     tel,
		})
		if err != nil {
			fatal("gpuperfd: -route", "err", err)
		}
		defer rt.Close()
		handler = rt.Handler()
		logger.Info("gpuperfd: routing", "devices", names, "default", names[0], "workers", rt.Workers())
		for name, wk := range rt.Health().Shards {
			logger.Info("gpuperfd: shard", "device", name, "worker", wk)
		}
	} else {
		f := gpuperf.NewFleet(gpuperf.FleetOptions{
			Catalog:            served,
			DefaultDevice:      names[0],
			Parallelism:        *parallel,
			CalibrationDir:     *calDir,
			CacheDir:           *cacheDir,
			CacheBytes:         *cacheMem,
			DisableBlockReplay: *noReplay,
			SubmissionDir:      *subsDir,
			SubmissionLimits: gpuperf.SubmissionLimits{
				MaxCount: *subsMax,
				MaxBytes: *subsMem,
				TTL:      *subsTTL,
			},
		})
		handler = gpuperf.NewObservedHandler(f, tel)
		logger.Info("gpuperfd: serving", "devices", names, "default", names[0], "kernels", f.Registry().Names())
		if *cacheDir != "" {
			logger.Info("gpuperfd: result cache", "dir", *cacheDir)
		}
		if *subsDir != "" {
			logger.Info("gpuperfd: submission store", "dir", *subsDir, "resident", len(f.Submissions()))
		}
		if *precalibrate {
			precalibrateAll(logger, fatal, f, names, *calDir)
		}
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Bound hostile/stalled connections. No WriteTimeout: a cold
		// first analyze legitimately takes tens of seconds while the
		// model calibrates.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("gpuperfd: listening", "addr", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal("gpuperfd: serve", "err", err)
	case <-stop:
		logger.Info("gpuperfd: shutting down")
		// Give in-flight analyses time to finish: a cold request can
		// legitimately run tens of seconds (calibration + simulation).
		ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				logger.Warn("gpuperfd: shutdown grace expired; aborting in-flight requests")
			} else {
				logger.Warn("gpuperfd: shutdown", "err", err)
			}
		}
	}
}

// servePprof mounts net/http/pprof on its own mux and listener, so
// profiling never rides the public service address and the service
// mux never inherits pprof's DefaultServeMux registrations.
func servePprof(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("gpuperfd: pprof listening", "addr", addr)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		logger.Warn("gpuperfd: pprof listener", "err", err)
	}
}

// precalibrateAll calibrates every served device before the listener
// opens, so /healthz answers ready from the first probe.
func precalibrateAll(logger *slog.Logger, fatal func(string, ...any), f *gpuperf.Fleet, names []string, calDir string) {
	for _, n := range names {
		a, err := f.Session(n)
		if err != nil {
			fatal("gpuperfd: precalibrate", "err", err)
		}
		logger.Info("gpuperfd: calibrating", "device", n)
		if err := a.Calibrate(); err != nil {
			fatal("gpuperfd: calibration failed", "device", n, "err", err)
		}
		switch {
		case a.CalibrationFromCache():
			logger.Info("gpuperfd: calibration loaded", "device", n, "dir", calDir)
		case a.CalibrationSaveError() != nil:
			logger.Info("gpuperfd: calibration ready (cache not saved)", "device", n, "err", a.CalibrationSaveError())
		default:
			logger.Info("gpuperfd: calibration ready", "device", n)
		}
	}
}
