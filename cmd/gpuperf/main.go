// Command gpuperf runs the paper's full analysis workflow (Fig. 1)
// on one of the built-in case-study kernels and prints the model's
// report: per-component times, bottleneck, causes, per-stage
// breakdown, and the measured (device-simulator) time next to the
// prediction.
//
// Usage:
//
//	gpuperf -kernel matmul16 | matmul8 | matmul32 | cr | cr-nbc |
//	        spmv-ell | spmv-bell-im | spmv-bell-imiv
//	        [-disasm] [-n size] [-p workers]
//	        [-cpuprofile file] [-memprofile file]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"gpuperf/internal/asm"
	"gpuperf/internal/barra"
	"gpuperf/internal/device"
	"gpuperf/internal/gpu"
	"gpuperf/internal/kernels"
	"gpuperf/internal/model"
	"gpuperf/internal/prof"
	"gpuperf/internal/sparse"
	"gpuperf/internal/timing"
	"gpuperf/internal/tridiag"
)

func main() {
	kernel := flag.String("kernel", "matmul16", "kernel to analyze")
	disasm := flag.Bool("disasm", false, "print the kernel disassembly and exit")
	n := flag.Int("n", 0, "problem size override (matrix dim / systems / block rows)")
	calFile := flag.String("cal", "", "calibration cache file (loaded if present, written after calibrating)")
	parallel := flag.Int("p", 0, "functional-simulation worker goroutines (0 = all cores, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpuperf: %v\n", err)
		os.Exit(1)
	}
	runErr := run(*kernel, *disasm, *n, *calFile, *parallel)
	if err := stopProf(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "gpuperf: %v\n", runErr)
		os.Exit(1)
	}
}

func run(kernel string, disasm bool, n int, calFile string, parallel int) error {
	cfg := gpu.GTX285()
	l, mem, err := buildKernel(cfg, kernel, n)
	if err != nil {
		return err
	}
	if disasm {
		fmt.Print(asm.Disassemble(l.Prog))
		return nil
	}

	fmt.Printf("device: %s (%d SMs, %.0f GFLOPS peak)\n", cfg.Name, cfg.NumSMs, cfg.PeakGFLOPS())
	fmt.Printf("kernel: %s, %d blocks x %d threads\n\n", l.Prog.Name, l.Grid, l.Block)

	cal, err := obtainCalibration(cfg, calFile)
	if err != nil {
		return err
	}

	est, _, err := model.Predict(cal, l, mem, &barra.Options{Parallelism: parallel})
	if err != nil {
		return err
	}
	fmt.Println(est.Report())

	// Measured time on a fresh copy of the data.
	_, mem2, err := buildKernel(cfg, kernel, n)
	if err != nil {
		return err
	}
	meas, err := device.Run(cfg, l, mem2)
	if err != nil {
		return err
	}
	fmt.Println("measured (device simulator):")
	fmt.Println(meas.Report())
	fmt.Printf("prediction error: %.1f%%\n", est.CompareError(meas.Seconds)*100)
	return nil
}

// obtainCalibration loads the calibration cache when available and
// valid for this configuration; otherwise it calibrates and, when a
// path was given, writes the cache.
func obtainCalibration(cfg gpu.Config, path string) (*timing.Calibration, error) {
	if path != "" {
		if data, err := os.ReadFile(path); err == nil {
			if cal, err := timing.LoadCalibration(data); err == nil && cal.Config().Name == cfg.Name {
				fmt.Printf("loaded calibration from %s\n", path)
				return cal, nil
			}
		}
	}
	fmt.Println("calibrating model (microbenchmarks)...")
	cal, err := timing.Calibrate(cfg)
	if err != nil {
		return nil, err
	}
	if path != "" {
		data, err := cal.MarshalJSON()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return nil, err
		}
		fmt.Printf("saved calibration to %s\n", path)
	}
	return cal, nil
}

func buildKernel(cfg gpu.Config, kernel string, n int) (barra.Launch, *barra.Memory, error) {
	rng := rand.New(rand.NewSource(1))
	switch kernel {
	case "matmul8", "matmul16", "matmul32":
		tile := map[string]int{"matmul8": 8, "matmul16": 16, "matmul32": 32}[kernel]
		if n == 0 {
			n = 256
		}
		mm, err := kernels.NewMatmul(n, tile)
		if err != nil {
			return barra.Launch{}, nil, err
		}
		a := make([]float32, n*n)
		b := make([]float32, n*n)
		for i := range a {
			a[i], b[i] = rng.Float32(), rng.Float32()
		}
		mem, err := mm.NewMemory(a, b)
		return mm.Launch(), mem, err

	case "cr", "cr-nbc":
		if n == 0 {
			n = 128
		}
		solver, err := kernels.NewCR(cfg, n, 512, kernel == "cr-nbc", false)
		if err != nil {
			return barra.Launch{}, nil, err
		}
		systems := make([]tridiag.System, n)
		for i := range systems {
			systems[i] = tridiag.NewRandom(512, rng)
		}
		mem, err := solver.NewMemory(systems)
		return solver.Launch(), mem, err

	case "spmv-ell", "spmv-bell-im", "spmv-bell-imiv":
		if n == 0 {
			n = 8192
		}
		kind := map[string]kernels.SpMVKind{
			"spmv-ell": kernels.ELL, "spmv-bell-im": kernels.BELLIM, "spmv-bell-imiv": kernels.BELLIMIV,
		}[kernel]
		m, err := sparse.GenQCDLike(n, 9, rng)
		if err != nil {
			return barra.Launch{}, nil, err
		}
		sp, err := kernels.NewSpMV(kind, m)
		if err != nil {
			return barra.Launch{}, nil, err
		}
		x := make([]float32, m.Rows())
		for i := range x {
			x[i] = rng.Float32()
		}
		mem, err := sp.NewMemory(x)
		return sp.Launch(), mem, err
	}
	return barra.Launch{}, nil, fmt.Errorf("unknown kernel %q", kernel)
}
