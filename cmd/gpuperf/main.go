// Command gpuperf runs the paper's full analysis workflow (Fig. 1)
// on one of the built-in case-study kernels and prints the model's
// report: per-component times, bottleneck, causes, per-stage
// breakdown, and the measured (device-simulator) time next to the
// prediction. With -advise it instead prints the counterfactual
// advisor's ranked what-if report (§4): the predicted speedup of
// perfect coalescing, conflict-free shared memory, no divergence,
// ideal stage overlap, and an occupancy sweep. It is a thin shell
// over the public gpuperf API — the same analysis a service embeds
// via gpuperf.NewAnalyzer.
//
// Usage:
//
//	gpuperf -kernel matmul16 | matmul8 | matmul32 | matmul-naive |
//	        cr | cr-nbc | cr-fwd | spmv-ell | spmv-bell-im |
//	        spmv-bell-imiv
//	        [-advise] [-disasm] [-n size] [-seed n] [-p workers]
//	        [-cal file] [-json] [-cpuprofile file] [-memprofile file]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gpuperf"
)

func main() {
	kernel := flag.String("kernel", "matmul16", "kernel to analyze")
	advse := flag.Bool("advise", false, "print the ranked counterfactual what-if report instead of the analysis")
	disasm := flag.Bool("disasm", false, "print the kernel disassembly and exit")
	n := flag.Int("n", 0, "problem size override (matrix dim / systems / block rows)")
	seed := flag.Int64("seed", 0, "input-generation seed (0 = default)")
	calFile := flag.String("cal", "", "calibration cache file (loaded if present, written after calibrating)")
	parallel := flag.Int("p", 0, "functional-simulation worker goroutines (0 = all cores, 1 = serial)")
	skipVerify := flag.Bool("skip-verify", false, "skip the (single-threaded) CPU-reference check of the functional output")
	asJSON := flag.Bool("json", false, "print the result as JSON instead of the text report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	flag.Parse()

	stopProf, err := gpuperf.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpuperf: %v\n", err)
		os.Exit(1)
	}
	runErr := run(gpuperf.Request{
		Kernel:     *kernel,
		Size:       *n,
		Seed:       *seed,
		Measure:    true,
		SkipVerify: *skipVerify,
	}, *advse, *disasm, *calFile, *parallel, *asJSON)
	if err := stopProf(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "gpuperf: %v\n", runErr)
		os.Exit(1)
	}
}

func run(req gpuperf.Request, advse, disasm bool, calFile string, parallel int, asJSON bool) error {
	a := gpuperf.NewAnalyzer(gpuperf.Options{
		Parallelism:     parallel,
		CalibrationPath: calFile,
	})
	if disasm {
		text, err := a.Registry().Disassemble(a.Device(), req.Kernel, gpuperf.Params{Size: req.Size, Seed: req.Seed})
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}

	dev := a.Device()
	fmt.Printf("device: %s (%d SMs, %.0f GFLOPS peak)\n", dev.Name, dev.NumSMs, dev.PeakGFLOPS())
	fmt.Println("calibrating model (microbenchmarks; skipped when the -cal cache is valid)...")
	if err := a.Calibrate(); err != nil {
		return err
	}
	switch {
	case a.CalibrationFromCache():
		fmt.Printf("loaded calibration from %s\n", calFile)
	case calFile == "":
		fmt.Println("calibrated model (microbenchmarks; cache with -cal)")
	case a.CalibrationSaveError() != nil:
		fmt.Printf("calibrated model (warning: could not save to %s: %v)\n", calFile, a.CalibrationSaveError())
	default:
		fmt.Printf("calibrated model, saved to %s\n", calFile)
	}

	if advse {
		adv, err := a.Advise(context.Background(), req)
		if err != nil {
			return err
		}
		if asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(adv)
		}
		fmt.Println()
		fmt.Print(adv.Report())
		return nil
	}

	res, err := a.Analyze(context.Background(), req)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Println()
	fmt.Print(res.Report())
	return nil
}
