// Command gpuperf runs the paper's full analysis workflow (Fig. 1)
// on one of the built-in case-study kernels and prints the model's
// report: per-component times, bottleneck, causes, per-stage
// breakdown, and the measured (device-simulator) time next to the
// prediction. With -advise it instead prints the counterfactual
// advisor's ranked what-if report (§4); with -compare it runs the
// kernel across a set of catalog devices and prints the ranked
// cross-device comparison (the architect question). It is a thin
// shell over the public gpuperf API — the same analysis a service
// embeds via gpuperf.NewFleet.
//
// Usage:
//
//	gpuperf -kernel matmul16 | matmul8 | matmul32 | matmul-naive |
//	        cr | cr-nbc | cr-fwd | spmv-ell | spmv-bell-im |
//	        spmv-bell-imiv
//	        [-device gtx285-6sm] [-compare gtx285-6sm,gtx285]
//	        [-advise] [-disasm] [-n size] [-seed n] [-p workers]
//	        [-cal-dir dir] [-cache-dir dir] [-json]
//	        [-cpuprofile file] [-memprofile file]
//	gpuperf -submit kernel.s -grid 4 -block 64
//	        -buffers in:f32:256:random,out:f32:4:zeros
//	        [-advise] [-device ...] [flags as above]
//
// -device names a catalog entry (see `gpuperfd`'s GET /v1/devices or
// gpuperf.DefaultCatalog); -compare takes a comma-separated device
// list whose first entry is the speedup baseline. -cache-dir points
// at an on-disk result cache: a repeat of an identical invocation is
// served from its content-addressed slot without calibrating or
// simulating anything (results are deterministic per request tuple,
// so the cached bytes are exactly what a fresh run would print).
//
// -submit runs the bring-your-own-kernel path: the assembly file is
// admitted through the ingest pipeline (static ceilings + the bounds
// verifier) exactly as a POST /v1/kernels would be, then analyzed
// under the measure-only policy (the CPU-reference check never runs
// for user programs; Result.VerifyError says so). -buffers declares
// the global-memory envelope as comma-separated
// name:elem:count:fill specs — elem f32|u32, fill zeros|random, or
// affine:start:step for a linear ramp.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpuperf"
)

func main() {
	kernel := flag.String("kernel", "matmul16", "kernel to analyze")
	device := flag.String("device", gpuperf.DefaultCatalogDevice, "catalog device to analyze for")
	compare := flag.String("compare", "", "comma-separated catalog devices: run the kernel across all of them and rank (first = baseline)")
	advse := flag.Bool("advise", false, "print the ranked counterfactual what-if report instead of the analysis")
	disasm := flag.Bool("disasm", false, "print the kernel disassembly and exit")
	n := flag.Int("n", 0, "problem size override (matrix dim / systems / block rows)")
	seed := flag.Int64("seed", 0, "input-generation seed (0 = default)")
	calDir := flag.String("cal-dir", "", "calibration cache directory (one file per device fingerprint)")
	cacheDir := flag.String("cache-dir", "", "result cache directory (one content-addressed slot per request fingerprint; repeats skip simulation entirely)")
	parallel := flag.Int("p", 0, "functional-simulation worker goroutines (0 = all cores, 1 = serial)")
	skipVerify := flag.Bool("skip-verify", false, "skip the (single-threaded) CPU-reference check of the functional output")
	noReplay := flag.Bool("no-replay", false, "force live per-block simulation, bypassing homogeneous-block replay (results are bit-identical; this is the slow path)")
	submit := flag.String("submit", "", "submit this assembly file as a user kernel and analyze it (overrides -kernel; see -grid/-block/-buffers)")
	grid := flag.Int("grid", 1, "submission launch grid (CTAs; with -submit)")
	block := flag.Int("block", 64, "submission launch block (threads per CTA; with -submit)")
	buffers := flag.String("buffers", "", "submission buffers: comma-separated name:elem:count:fill specs (elem f32|u32; fill zeros|random|affine:start:step)")
	asJSON := flag.Bool("json", false, "print the result as JSON instead of the text report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	flag.Parse()

	stopProf, err := gpuperf.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpuperf: %v\n", err)
		os.Exit(1)
	}
	var sub *submitOpts
	if *submit != "" {
		sub = &submitOpts{file: *submit, grid: *grid, block: *block, buffers: *buffers}
	}
	runErr := run(gpuperf.Request{
		Kernel:     *kernel,
		Device:     *device,
		Size:       *n,
		Seed:       *seed,
		Measure:    true,
		SkipVerify: *skipVerify,
		NoReplay:   *noReplay,
	}, sub, *compare, *advse, *disasm, *calDir, *cacheDir, *parallel, *asJSON)
	if err := stopProf(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "gpuperf: %v\n", runErr)
		os.Exit(1)
	}
}

// submitOpts carries the -submit mode's flags: the assembly file and
// the launch/buffer declaration the ingest pipeline admits it under.
type submitOpts struct {
	file    string
	grid    int
	block   int
	buffers string
}

func run(req gpuperf.Request, sub *submitOpts, compare string, advse, disasm bool, calDir, cacheDir string, parallel int, asJSON bool) error {
	f := gpuperf.NewFleet(gpuperf.FleetOptions{
		DefaultDevice:  req.Device,
		Parallelism:    parallel,
		CalibrationDir: calDir,
		CacheDir:       cacheDir,
	})
	ctx := context.Background()
	if sub != nil {
		rec, err := submitKernel(f, sub)
		if err != nil {
			return err
		}
		if !asJSON {
			fmt.Printf("submitted %s (kernel %q, %d×%d launch, %d instructions, %d regs, %d B smem, %d B footprint)\n",
				rec.ID, rec.Kernel, rec.Grid, rec.Block, rec.Instructions, rec.Registers, rec.SharedMemBytes, rec.FootprintBytes)
		}
		// The receipt's id is the registry kernel name; submissions are
		// one concrete problem instance, so the size is pinned.
		req.Kernel = rec.ID
		req.Size = 0
	}
	// cacheNote narrates the result cache's verdict for text output —
	// a HIT means nothing was calibrated or simulated for this run.
	cacheNote := func(st gpuperf.CacheStatus) {
		if cacheDir != "" && !asJSON {
			fmt.Printf("result cache %s (%s)\n", st, cacheDir)
		}
	}

	if compare != "" {
		devices := strings.Split(compare, ",")
		for i := range devices {
			devices[i] = strings.TrimSpace(devices[i])
		}
		cmp, st, err := f.CompareCached(ctx, gpuperf.CompareRequest{
			Kernel:      req.Kernel,
			Size:        req.Size,
			Seed:        req.Seed,
			Parallelism: parallel,
			Devices:     devices,
			Measure:     true,
		})
		if err != nil {
			return err
		}
		cacheNote(st)
		if asJSON {
			return printJSON(cmp)
		}
		fmt.Print(cmp.Report())
		return nil
	}

	a, err := f.Session(req.Device)
	if err != nil {
		return err
	}
	if disasm {
		text, err := a.Registry().Disassemble(a.Device(), req.Kernel, gpuperf.Params{Size: req.Size, Seed: req.Seed})
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}

	dev := a.Device()
	fmt.Printf("device: %s (%d SMs, %.0f GFLOPS peak)\n", dev.Name, dev.NumSMs, dev.PeakGFLOPS())
	if cacheDir == "" {
		// Without a result cache every run needs the model, so
		// calibrate eagerly and narrate it. With -cache-dir the
		// calibration stays lazy: a cache hit never needs it, and a
		// miss triggers it inside the analysis.
		fmt.Println("calibrating model (microbenchmarks; skipped when the -cal-dir cache is valid)...")
		if err := a.Calibrate(); err != nil {
			return err
		}
		switch {
		case a.CalibrationFromCache():
			fmt.Printf("loaded calibration from %s\n", calDir)
		case calDir == "":
			fmt.Println("calibrated model (microbenchmarks; cache with -cal-dir)")
		case a.CalibrationSaveError() != nil:
			fmt.Printf("calibrated model (warning: could not save to %s: %v)\n", calDir, a.CalibrationSaveError())
		default:
			fmt.Printf("calibrated model, saved to %s\n", calDir)
		}
	}

	if advse {
		adv, st, err := f.AdviseCached(ctx, req)
		if err != nil {
			return err
		}
		cacheNote(st)
		if asJSON {
			return printJSON(adv)
		}
		fmt.Println()
		fmt.Print(adv.Report())
		return nil
	}

	res, st, err := f.AnalyzeCached(ctx, req)
	if err != nil {
		return err
	}
	cacheNote(st)
	if asJSON {
		return printJSON(res)
	}
	fmt.Println()
	fmt.Print(res.Report())
	return nil
}

// submitKernel reads the -submit assembly file and admits it through
// the fleet's ingest pipeline, exactly as POST /v1/kernels would.
func submitKernel(f *gpuperf.Fleet, sub *submitOpts) (*gpuperf.SubmissionReceipt, error) {
	src, err := os.ReadFile(sub.file)
	if err != nil {
		return nil, err
	}
	bufs, err := parseBuffers(sub.buffers)
	if err != nil {
		return nil, err
	}
	return f.SubmitKernel(gpuperf.KernelSubmission{
		Label:   sub.file,
		Source:  string(src),
		Grid:    sub.grid,
		Block:   sub.block,
		Buffers: bufs,
	})
}

// parseBuffers decodes the -buffers flag: comma-separated
// name:elem:count:fill items, where fill "affine" takes two more
// colon fields (start:step).
func parseBuffers(s string) ([]gpuperf.BufferSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []gpuperf.BufferSpec
	for _, item := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) != 4 && !(len(parts) == 6 && parts[3] == "affine") {
			return nil, fmt.Errorf("-buffers %q: want name:elem:count:fill (fill affine takes :start:step)", item)
		}
		count, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("-buffers %q: count: %v", item, err)
		}
		b := gpuperf.BufferSpec{Name: parts[0], Elem: parts[1], Count: count, Fill: parts[3]}
		if len(parts) == 6 {
			if b.Start, err = strconv.ParseFloat(parts[4], 64); err != nil {
				return nil, fmt.Errorf("-buffers %q: start: %v", item, err)
			}
			if b.Step, err = strconv.ParseFloat(parts[5], 64); err != nil {
				return nil, fmt.Errorf("-buffers %q: step: %v", item, err)
			}
		}
		out = append(out, b)
	}
	return out, nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
