// Command gpuperf runs the paper's full analysis workflow (Fig. 1)
// on one of the built-in case-study kernels and prints the model's
// report: per-component times, bottleneck, causes, per-stage
// breakdown, and the measured (device-simulator) time next to the
// prediction. With -advise it instead prints the counterfactual
// advisor's ranked what-if report (§4); with -compare it runs the
// kernel across a set of catalog devices and prints the ranked
// cross-device comparison (the architect question). It is a thin
// shell over the public gpuperf API — the same analysis a service
// embeds via gpuperf.NewFleet.
//
// Usage:
//
//	gpuperf -kernel matmul16 | matmul8 | matmul32 | matmul-naive |
//	        cr | cr-nbc | cr-fwd | spmv-ell | spmv-bell-im |
//	        spmv-bell-imiv
//	        [-device gtx285-6sm] [-compare gtx285-6sm,gtx285]
//	        [-advise] [-disasm] [-n size] [-seed n] [-p workers]
//	        [-cal-dir dir] [-cache-dir dir] [-json]
//	        [-cpuprofile file] [-memprofile file]
//
// -device names a catalog entry (see `gpuperfd`'s GET /v1/devices or
// gpuperf.DefaultCatalog); -compare takes a comma-separated device
// list whose first entry is the speedup baseline. -cache-dir points
// at an on-disk result cache: a repeat of an identical invocation is
// served from its content-addressed slot without calibrating or
// simulating anything (results are deterministic per request tuple,
// so the cached bytes are exactly what a fresh run would print).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gpuperf"
)

func main() {
	kernel := flag.String("kernel", "matmul16", "kernel to analyze")
	device := flag.String("device", gpuperf.DefaultCatalogDevice, "catalog device to analyze for")
	compare := flag.String("compare", "", "comma-separated catalog devices: run the kernel across all of them and rank (first = baseline)")
	advse := flag.Bool("advise", false, "print the ranked counterfactual what-if report instead of the analysis")
	disasm := flag.Bool("disasm", false, "print the kernel disassembly and exit")
	n := flag.Int("n", 0, "problem size override (matrix dim / systems / block rows)")
	seed := flag.Int64("seed", 0, "input-generation seed (0 = default)")
	calDir := flag.String("cal-dir", "", "calibration cache directory (one file per device fingerprint)")
	cacheDir := flag.String("cache-dir", "", "result cache directory (one content-addressed slot per request fingerprint; repeats skip simulation entirely)")
	parallel := flag.Int("p", 0, "functional-simulation worker goroutines (0 = all cores, 1 = serial)")
	skipVerify := flag.Bool("skip-verify", false, "skip the (single-threaded) CPU-reference check of the functional output")
	noReplay := flag.Bool("no-replay", false, "force live per-block simulation, bypassing homogeneous-block replay (results are bit-identical; this is the slow path)")
	asJSON := flag.Bool("json", false, "print the result as JSON instead of the text report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	flag.Parse()

	stopProf, err := gpuperf.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpuperf: %v\n", err)
		os.Exit(1)
	}
	runErr := run(gpuperf.Request{
		Kernel:     *kernel,
		Device:     *device,
		Size:       *n,
		Seed:       *seed,
		Measure:    true,
		SkipVerify: *skipVerify,
		NoReplay:   *noReplay,
	}, *compare, *advse, *disasm, *calDir, *cacheDir, *parallel, *asJSON)
	if err := stopProf(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "gpuperf: %v\n", runErr)
		os.Exit(1)
	}
}

func run(req gpuperf.Request, compare string, advse, disasm bool, calDir, cacheDir string, parallel int, asJSON bool) error {
	f := gpuperf.NewFleet(gpuperf.FleetOptions{
		DefaultDevice:  req.Device,
		Parallelism:    parallel,
		CalibrationDir: calDir,
		CacheDir:       cacheDir,
	})
	ctx := context.Background()
	// cacheNote narrates the result cache's verdict for text output —
	// a HIT means nothing was calibrated or simulated for this run.
	cacheNote := func(st gpuperf.CacheStatus) {
		if cacheDir != "" && !asJSON {
			fmt.Printf("result cache %s (%s)\n", st, cacheDir)
		}
	}

	if compare != "" {
		devices := strings.Split(compare, ",")
		for i := range devices {
			devices[i] = strings.TrimSpace(devices[i])
		}
		cmp, st, err := f.CompareCached(ctx, gpuperf.CompareRequest{
			Kernel:      req.Kernel,
			Size:        req.Size,
			Seed:        req.Seed,
			Parallelism: parallel,
			Devices:     devices,
			Measure:     true,
		})
		if err != nil {
			return err
		}
		cacheNote(st)
		if asJSON {
			return printJSON(cmp)
		}
		fmt.Print(cmp.Report())
		return nil
	}

	a, err := f.Session(req.Device)
	if err != nil {
		return err
	}
	if disasm {
		text, err := a.Registry().Disassemble(a.Device(), req.Kernel, gpuperf.Params{Size: req.Size, Seed: req.Seed})
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}

	dev := a.Device()
	fmt.Printf("device: %s (%d SMs, %.0f GFLOPS peak)\n", dev.Name, dev.NumSMs, dev.PeakGFLOPS())
	if cacheDir == "" {
		// Without a result cache every run needs the model, so
		// calibrate eagerly and narrate it. With -cache-dir the
		// calibration stays lazy: a cache hit never needs it, and a
		// miss triggers it inside the analysis.
		fmt.Println("calibrating model (microbenchmarks; skipped when the -cal-dir cache is valid)...")
		if err := a.Calibrate(); err != nil {
			return err
		}
		switch {
		case a.CalibrationFromCache():
			fmt.Printf("loaded calibration from %s\n", calDir)
		case calDir == "":
			fmt.Println("calibrated model (microbenchmarks; cache with -cal-dir)")
		case a.CalibrationSaveError() != nil:
			fmt.Printf("calibrated model (warning: could not save to %s: %v)\n", calDir, a.CalibrationSaveError())
		default:
			fmt.Printf("calibrated model, saved to %s\n", calDir)
		}
	}

	if advse {
		adv, st, err := f.AdviseCached(ctx, req)
		if err != nil {
			return err
		}
		cacheNote(st)
		if asJSON {
			return printJSON(adv)
		}
		fmt.Println()
		fmt.Print(adv.Report())
		return nil
	}

	res, st, err := f.AnalyzeCached(ctx, req)
	if err != nil {
		return err
	}
	cacheNote(st)
	if asJSON {
		return printJSON(res)
	}
	fmt.Println()
	fmt.Print(res.Report())
	return nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
