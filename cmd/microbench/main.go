// Command microbench regenerates the microbenchmark curves of paper
// §4: instruction throughput per class and shared-memory bandwidth
// versus warps per SM (Fig. 2), and the synthetic global-memory
// bandwidth sweep (Fig. 3).
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuperf"
)

func main() {
	large := flag.Bool("large", false, "dense Fig. 3 sweep (slower)")
	chart := flag.Bool("chart", false, "render ASCII bar charts instead of tables")
	flag.Parse()

	curves, err := gpuperf.MicrobenchCurves(gpuperf.ExperimentOptions{Large: *large})
	if err != nil {
		fmt.Fprintf(os.Stderr, "microbench: %v\n", err)
		os.Exit(1)
	}
	for _, c := range curves {
		if *chart {
			fmt.Println(c.Table.Chart(c.ChartColumn, 50))
		} else {
			c.Table.Fprint(os.Stdout)
		}
	}
}
