// Command microbench regenerates the microbenchmark curves of paper
// §4: instruction throughput per class and shared-memory bandwidth
// versus warps per SM (Fig. 2), and the synthetic global-memory
// bandwidth sweep (Fig. 3).
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuperf/internal/experiments"
)

func main() {
	large := flag.Bool("large", false, "dense Fig. 3 sweep (slower)")
	chart := flag.Bool("chart", false, "render ASCII bar charts instead of tables")
	flag.Parse()

	scale := experiments.Small
	if *large {
		scale = experiments.Large
	}
	s := experiments.New(scale)

	type curve struct {
		run func() (*experiments.Table, error)
		col int // charted column
	}
	for _, c := range []curve{
		{s.Table1, 3}, {s.Figure2Instr, 2}, {s.Figure2Shared, 1}, {s.Figure3Global, 1},
	} {
		tb, err := c.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "microbench: %v\n", err)
			os.Exit(1)
		}
		if *chart {
			fmt.Println(tb.Chart(c.col, 50))
		} else {
			tb.Fprint(os.Stdout)
		}
	}
}
