// Command experiments regenerates every table and figure of the
// paper's evaluation section (plus the architectural-improvement
// ablations) and prints them as text tables.
//
// Usage:
//
//	experiments [-large] [-only substring] [-p workers]
//	            [-cpuprofile file] [-memprofile file]
//
// -large runs paper-scale workloads (minutes); the default small
// scale finishes in under a minute. -only filters experiments by
// title substring. -p sets the functional-simulation worker count
// per launch (0 = all cores, 1 = serial); results are identical at
// any setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gpuperf"
)

func main() {
	large := flag.Bool("large", false, "run paper-scale workloads")
	only := flag.String("only", "", "run only experiments whose title contains this substring")
	parallel := flag.Int("p", 0, "functional-simulation worker goroutines (0 = all cores, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	flag.Parse()

	stopProf, err := gpuperf.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	tables, err := gpuperf.RunExperiments(gpuperf.ExperimentOptions{
		Large:       *large,
		Parallelism: *parallel,
	})
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	// Print whatever completed even on error.
	for _, tb := range tables {
		if *only != "" && !strings.Contains(strings.ToLower(tb.Title), strings.ToLower(*only)) {
			continue
		}
		tb.Fprint(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
