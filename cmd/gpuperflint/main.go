// Command gpuperflint is gpuperf's multichecker: it loads the module,
// type-checks every non-test package, and runs the internal/lint
// analyzer suite — the repo's invariants (import layering, hot-path
// allocation-freedom, determinism, slog-only logging, context
// propagation) as positioned compile-time diagnostics.
//
// Usage:
//
//	gpuperflint [-C moduleRoot] [-list] [packages...]
//
// Package arguments are module-relative directory prefixes ("cmd",
// "internal/barra"); "./..." or no arguments lints the whole module.
// Every package is always loaded (whole-program analyzers need the
// full call graph); the arguments only filter which packages'
// findings are reported. Exit status: 0 clean, 1 findings, 2 load or
// usage error.
//
// Note: gpuperflint is part of the root module and therefore buildable
// by `go build ./...`, but it imports gpuperf/internal/lint — it is a
// development tool, not a facade consumer, and the layering policy
// lists it accordingly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpuperf/internal/lint"
)

func main() {
	root := flag.String("C", "", "module root (default: walk up from the working directory to go.mod)")
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gpuperflint [-C moduleRoot] [-list] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpuperflint:", err)
			os.Exit(2)
		}
	}

	prog, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuperflint:", err)
		os.Exit(2)
	}

	pkgs := prog.Packages()
	if filters := packageFilters(flag.Args()); filters != nil {
		var kept []*lint.Package
		for _, pkg := range pkgs {
			for _, f := range filters {
				if f == "" || pkg.Rel == f || strings.HasPrefix(pkg.Rel, f+"/") {
					kept = append(kept, pkg)
					break
				}
			}
		}
		pkgs = kept
	}

	diags, err := lint.Run(prog, analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuperflint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gpuperflint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// packageFilters normalizes the CLI package arguments into
// module-relative directory prefixes; nil means "everything".
func packageFilters(args []string) []string {
	var filters []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == "." {
			return nil
		}
		arg = strings.TrimSuffix(arg, "/...")
		arg = strings.TrimPrefix(arg, "./")
		filters = append(filters, strings.Trim(filepath.ToSlash(arg), "/"))
	}
	return filters
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
