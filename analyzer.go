package gpuperf

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"gpuperf/internal/advise"
	"gpuperf/internal/barra"
	"gpuperf/internal/device"
	"gpuperf/internal/model"
	"gpuperf/internal/obs"
	"gpuperf/internal/timing"
)

// Options configures an Analyzer session.
type Options struct {
	// Device is the GPU to analyze for. The zero value (detected by
	// an empty Name) means DefaultDevice.
	Device Device
	// Registry resolves kernel names. Nil means DefaultRegistry.
	Registry *Registry
	// Parallelism is the functional-simulation worker count per
	// request (0 = all host cores, 1 = serial). Results are
	// bit-identical at any setting. When set, it is also the ceiling
	// for per-Request overrides — a service's resource policy cannot
	// be bypassed by the request body.
	Parallelism int
	// CalibrationDir, when set, is an on-disk calibration cache
	// directory keyed by device fingerprint: the session loads its
	// device's entry if present and valid, and writes one atomically
	// (write-temp-then-rename) after a fresh calibration. Sessions for
	// different hardware never share an entry; sessions for identical
	// hardware under different names do.
	CalibrationDir string
	// BatchConcurrency caps how many requests AnalyzeBatch runs at
	// once (0 = GOMAXPROCS).
	BatchConcurrency int
	// MaxConcurrent is the session's admission limit: how many
	// Analyze calls may hold resources (input memory, simulation,
	// verification) at once, whatever mix of direct, batch and HTTP
	// callers produced them. Excess callers wait, respecting their
	// contexts, before building anything. 0 = GOMAXPROCS.
	MaxConcurrent int
	// DisableBlockReplay forces every functional simulation through
	// live per-block execution instead of the engine's
	// homogeneous-block replay (see barra.Options). Results are
	// bit-identical either way; the escape hatch exists for
	// debugging and for measuring replay's effect.
	DisableBlockReplay bool
}

// Request asks for one kernel analysis.
type Request struct {
	// Kernel names a registry entry (GET /v1/kernels lists them).
	Kernel string `json:"kernel"`
	// Device names a catalog entry (GET /v1/devices lists them) and is
	// resolved by the Fleet that routes the request; empty means the
	// fleet's default device. A bare Analyzer serves one fixed device
	// and rejects requests naming any other.
	Device string `json:"device,omitempty"`
	// Size is the kernel-specific problem size (0 = kernel default).
	Size int `json:"size,omitempty"`
	// Seed drives deterministic input generation (0 = seed 1):
	// identical requests build identical inputs, under any
	// concurrency.
	Seed int64 `json:"seed,omitempty"`
	// Parallelism overrides the session's worker count when > 0,
	// capped by Options.Parallelism when the operator set one and by
	// the host's core count otherwise.
	Parallelism int `json:"parallelism,omitempty"`
	// Measure additionally runs the device (timing) simulator on a
	// fresh copy of the inputs and reports measured vs predicted.
	Measure bool `json:"measure,omitempty"`
	// SkipVerify skips the CPU-reference check of the functional
	// output. The reference computation is single-threaded host code
	// (O(n³) for matmul), so large requests that only need the model
	// verdict can opt out of paying for it.
	SkipVerify bool `json:"skip_verify,omitempty"`
	// NoReplay forces this request's functional simulation through
	// live per-block execution, bypassing homogeneous-block replay
	// (the per-request form of Options.DisableBlockReplay). Stats and
	// the model verdict are bit-identical either way; only the
	// Result's engine counters change.
	NoReplay bool `json:"no_replay,omitempty"`
}

// Analyzer is a reusable session around the paper's Fig. 1 workflow:
// it owns a device configuration and its lazily-built, cached
// calibration, resolves kernels through a Registry, runs the
// functional simulation with cancellation, and returns serializable
// Results. Safe for concurrent use — a service handles all traffic
// with one Analyzer, amortizing the (expensive) calibration across
// every request.
type Analyzer struct {
	opt Options
	dev Device
	reg *Registry

	// admit is the Options.MaxConcurrent admission semaphore.
	admit chan struct{}

	// calStart launches the one calibration goroutine; calDone closes
	// when it finishes. Waiters block on calDone (with their contexts,
	// via calibrationCtx) rather than inside a sync.Once, so a dead
	// client stops waiting even while calibration is still running.
	calStart     sync.Once
	calDone      chan struct{}
	cal          *timing.Calibration
	calErr       error
	calFromCache bool
	calSaveErr   error

	// engine accumulates simulation-engine counters across requests.
	engine engineCounters
}

// NewAnalyzer builds a session. Calibration happens lazily on the
// first Analyze (or eagerly via Calibrate).
func NewAnalyzer(opt Options) *Analyzer { return newAnalyzer(opt, nil) }

// newAnalyzer is NewAnalyzer with an optional externally-owned
// admission semaphore: a Fleet passes one channel to every session so
// MaxConcurrent bounds the whole fleet, not each device separately.
func newAnalyzer(opt Options, admit chan struct{}) *Analyzer {
	dev := opt.Device
	if dev.Name == "" {
		dev = DefaultDevice()
	}
	reg := opt.Registry
	if reg == nil {
		reg = DefaultRegistry()
	}
	if admit == nil {
		limit := opt.MaxConcurrent
		if limit <= 0 {
			limit = runtime.GOMAXPROCS(0)
		}
		admit = make(chan struct{}, limit)
	}
	return &Analyzer{
		opt:     opt,
		dev:     dev,
		reg:     reg,
		admit:   admit,
		calDone: make(chan struct{}),
	}
}

// Device returns the session's device configuration.
func (a *Analyzer) Device() Device { return a.dev }

// Registry returns the session's kernel registry.
func (a *Analyzer) Registry() *Registry { return a.reg }

// Kernels lists the session's available kernel specs, sorted by name.
func (a *Analyzer) Kernels() []KernelSpec { return a.reg.Specs() }

// Calibrate forces the lazy calibration now (microbenchmarks on the
// device simulator — seconds per device). Subsequent calls are free;
// concurrent callers share one run. Persisting to CalibrationDir is
// best-effort: a failed write never invalidates the in-memory
// calibration (see CalibrationSaveError).
func (a *Analyzer) Calibrate() error {
	a.calStart.Do(func() { go a.runCalibration() })
	<-a.calDone
	return a.calErr
}

// calibrationCtx waits for the shared calibration like Calibrate,
// but abandons the wait when ctx dies — the calibration itself keeps
// running for the callers that still want it.
func (a *Analyzer) calibrationCtx(ctx context.Context) (*timing.Calibration, error) {
	a.calStart.Do(func() { go a.runCalibration() })
	select {
	case <-a.calDone:
		if a.calErr != nil {
			return nil, a.calErr
		}
		return a.cal, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runCalibration performs the one calibration; its writes are
// published to waiters by the calDone close.
func (a *Analyzer) runCalibration() {
	defer close(a.calDone)
	if dir := a.opt.CalibrationDir; dir != "" {
		// Cache entries are keyed and validated by hardware
		// fingerprint: a session analyzing a modified configuration
		// (different banks, clocks, segment sizes) never picks up
		// stale curves, even under the same name, and corrupt or
		// truncated files read as a miss, not an error.
		if cal, ok := timing.LoadCachedCalibration(dir, a.dev); ok {
			a.cal = cal
			a.calFromCache = true
			return
		}
	}
	a.cal, a.calErr = timing.Calibrate(a.dev)
	if a.calErr == nil && a.opt.CalibrationDir != "" {
		a.calSaveErr = a.cal.SaveCachedCalibration(a.opt.CalibrationDir)
	}
}

// StartCalibration launches the session's calibration in the
// background without waiting for it — what a service calls at boot so
// /healthz turns ready without blocking startup. Idempotent: later
// calls (and every Analyze) join the same one run.
func (a *Analyzer) StartCalibration() {
	a.calStart.Do(func() { go a.runCalibration() })
}

// CalibrationReady reports, without blocking and without triggering
// anything, whether the session's calibration has finished, and with
// what error. (false, nil) means not started or still running — the
// readiness probe a health endpoint can poll safely, because probing
// never forces a device nobody asked for to calibrate.
func (a *Analyzer) CalibrationReady() (bool, error) {
	select {
	case <-a.calDone:
		return true, a.calErr
	default:
		return false, nil
	}
}

// CalibrationFromCache reports whether Calibrate loaded the on-disk
// cache instead of measuring (meaningful after Calibrate returns).
func (a *Analyzer) CalibrationFromCache() bool { return a.calFromCache }

// CalibrationSaveError returns the error from the best-effort write
// to CalibrationDir, if any. A failed write leaves the session fully
// functional on its in-memory calibration.
func (a *Analyzer) CalibrationSaveError() error { return a.calSaveErr }

// workers resolves the per-run worker count: the request's override,
// capped by the session's Parallelism when the operator set one, and
// by the host's core count otherwise — a request body can lower the
// concurrency of its own run but never raise it past the policy.
func (a *Analyzer) workers(req Request) int {
	limit := a.opt.Parallelism
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if req.Parallelism > 0 && req.Parallelism < limit {
		return req.Parallelism
	}
	return limit
}

// simRun is the outcome of the shared request prelude (and, after
// simulate, the functional run): the resolved spec, the built
// workload, the run's statistics and the session calibration (nil
// when the caller skipped it).
type simRun struct {
	spec  KernelSpec
	w     *Workload
	stats *barra.Stats
	cal   *timing.Calibration
	// phases accumulates per-phase wall-clock seconds (calibration
	// wait, admission wait, build, engine, model, verify, measure) for
	// Result.Diagnostics. Only the request's own goroutine writes it.
	phases map[string]float64
}

// phase opens a span named name — joining the request's trace when
// the context carries one, detached otherwise, so phase timings work
// for bare library calls too — and returns the span-carrying context
// plus a done func that closes the span and adds its duration to the
// run's phase map.
func (r *simRun) phase(ctx context.Context, name string) (context.Context, func()) {
	ctx, sp := obs.StartSpan(ctx, name)
	return ctx, func() {
		sp.End()
		if r.phases == nil {
			r.phases = make(map[string]float64)
		}
		r.phases[name] += sp.Duration().Seconds()
	}
}

// roundPhases copies a phase map rounded to microseconds — stable,
// readable JSON without 17-digit float tails.
func roundPhases(m map[string]float64) map[string]float64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = math.Round(v*1e6) / 1e6
	}
	return out
}

// prelude is the shared front half of every request — Analyze,
// Advise and Measure alike, whether they arrived through the
// library, a batch, a fleet or HTTP: validate the request (fail fast
// — an unknown kernel, a foreign device or a rejected size pays for
// neither calibration nor an admission slot), wait for the shared
// calibration when the caller needs the model (needCal), take an
// admission slot, and build the problem instance. req's Size and
// Seed are normalized in place so callers echo the concrete values.
// On success the admission slot is still held — the caller must call
// release exactly once when done with the workload's memory
// (simulation, verification and measurement included).
func (a *Analyzer) prelude(ctx context.Context, req *Request, needCal, dropVerify bool) (*simRun, func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if req.Device != "" && req.Device != a.dev.Name {
		return nil, nil, fmt.Errorf("%w: session analyzes device %q, not %q (route multi-device requests through a Fleet)",
			ErrInvalidRequest, a.dev.Name, req.Device)
	}
	spec, p, err := a.reg.prepare(req.Kernel, Params{Size: req.Size, Seed: req.Seed})
	if err != nil {
		return nil, nil, err
	}
	req.Size, req.Seed = p.Size, p.Seed
	if spec.Unverified {
		// Submitted kernels have no CPU reference; pin the flag so the
		// request (and any cache key derived from it) reflects the
		// measure-only policy whatever the caller asked for.
		req.SkipVerify = true
	}
	r := &simRun{spec: spec}
	if needCal {
		// Wait for the shared calibration before taking a slot, so a
		// cold burst doesn't pin MaxConcurrent requests for its whole
		// duration; the wait itself respects ctx.
		calCtx, calDone := r.phase(ctx, "calibration")
		r.cal, err = a.calibrationCtx(calCtx)
		calDone()
		if err != nil {
			return nil, nil, err
		}
	}
	// Admission control: at most MaxConcurrent requests hold input
	// memory and simulation resources at a time; the rest wait here
	// holding nothing, abandoning the queue when their context dies.
	_, admitDone := r.phase(ctx, "admission")
	select {
	case a.admit <- struct{}{}:
		admitDone()
	case <-ctx.Done():
		admitDone()
		return nil, nil, ctx.Err()
	}
	release := func() { <-a.admit }
	_, buildDone := r.phase(ctx, "build")
	r.w, err = spec.build(a.dev, p)
	buildDone()
	if err != nil {
		release()
		return nil, nil, err
	}
	if dropVerify {
		// The Verify closure captures the host-side input copies
		// (large for big requests — exactly the cases that skip it);
		// dropping it frees them for the duration of the run.
		r.w.Verify = nil
	}
	return r, release, nil
}

// simulate runs the prelude and the functional simulation — the
// common front half of Analyze and Advise.
func (a *Analyzer) simulate(ctx context.Context, req *Request, dropVerify bool) (*simRun, func(), error) {
	r, release, err := a.prelude(ctx, req, true, dropVerify)
	if err != nil {
		return nil, nil, err
	}
	engCtx, engDone := r.phase(ctx, "engine")
	r.stats, err = barra.RunContext(engCtx, a.dev, r.w.Launch, r.w.Mem,
		&barra.Options{
			Parallelism:         a.workers(*req),
			Regions:             r.w.Regions,
			DisableBlockReplay:  a.opt.DisableBlockReplay || req.NoReplay,
			MaxWarpInstructions: r.w.MaxWarpInstructions,
		})
	engDone()
	if err != nil {
		release()
		return nil, nil, err
	}
	a.engine.add(r.stats.Engine)
	return r, release, nil
}

// EngineCounters is the cumulative functional-engine effectiveness
// summary of a session (or, summed, a fleet): how many blocks were
// actually simulated vs served by homogeneous-block replay, and how
// much single-step dispatch batched warp stepping absorbed. Exposed
// through GET /v1/stats.
type EngineCounters struct {
	// BlocksSimulated/BlocksReplayed split every simulated launch's
	// blocks by how the engine derived their statistics. Runs with
	// replay bypassed (hooks, -no-replay) count nothing.
	BlocksSimulated int64 `json:"blocks_simulated"`
	BlocksReplayed  int64 `json:"blocks_replayed"`
	// BatchedRuns/BatchedInstrs count the batched warp-stepping runs
	// the engine path issued and the instructions they covered.
	BatchedRuns   int64 `json:"batched_runs"`
	BatchedInstrs int64 `json:"batched_instrs"`
}

// engineCounters is the atomic accumulator behind EngineCounters.
type engineCounters struct {
	simulated, replayed, runs, instrs atomic.Int64
}

func (c *engineCounters) add(e barra.EngineStats) {
	c.simulated.Add(e.BlocksSimulated)
	c.replayed.Add(e.BlocksReplayed)
	c.runs.Add(e.BatchedRuns)
	c.instrs.Add(e.BatchedInstrs)
}

// EngineCounters returns the session's cumulative simulation-engine
// counters across every request it has served.
func (a *Analyzer) EngineCounters() EngineCounters {
	return EngineCounters{
		BlocksSimulated: a.engine.simulated.Load(),
		BlocksReplayed:  a.engine.replayed.Load(),
		BatchedRuns:     a.engine.runs.Load(),
		BatchedInstrs:   a.engine.instrs.Load(),
	}
}

// Analyze runs the full workflow for one request: build the kernel's
// deterministic problem instance, functionally simulate it (sharded
// across workers, abortable through ctx), apply the calibrated
// three-component model, verify the output against the CPU reference
// when the kernel has one, and — with Measure — time the same launch
// on the device simulator.
func (a *Analyzer) Analyze(ctx context.Context, req Request) (*Result, error) {
	r, release, err := a.simulate(ctx, &req, req.SkipVerify)
	if err != nil {
		return nil, err
	}
	defer release()
	_, modelDone := r.phase(ctx, "model")
	est, err := model.Analyze(r.cal, r.w.Launch, r.stats)
	modelDone()
	if err != nil {
		return nil, err
	}
	res := newResult(req, a.dev, r.w, est, r.stats)
	if r.spec.Unverified {
		res.VerifyError = "unverified: user-submitted"
	}

	if r.w.Verify != nil {
		verifyCtx, verifyDone := r.phase(ctx, "verify")
		worst, err := r.w.Verify(verifyCtx, r.w.Mem)
		verifyDone()
		if err != nil {
			return nil, err
		}
		res.MaxAbsError = &worst
	}

	if req.Measure {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		measCtx, measDone := r.phase(ctx, "measure")
		// The functional run consumed the inputs; builders are
		// deterministic per (size, seed), so rebuilding yields the
		// identical problem instance on fresh memory (req holds the
		// normalized size and seed).
		w2, err := r.spec.build(a.dev, Params{Size: req.Size, Seed: req.Seed})
		if err != nil {
			measDone()
			return nil, err
		}
		meas, err := device.RunContext(measCtx, a.dev, w2.Launch, w2.Mem)
		measDone()
		if err != nil {
			return nil, err
		}
		res.MeasuredSeconds = meas.Seconds
		res.MeasuredDominant = meas.DominantComponent()
		res.PredictionError = est.CompareError(meas.Seconds)
	}
	// The phase breakdown rides Diagnostics so every response answers
	// "where did the time go" without a metrics endpoint.
	res.Diagnostics.PhaseSeconds = roundPhases(r.phases)
	return res, nil
}

// Advise runs the counterfactual advisor for one request: build the
// kernel's problem instance, functionally simulate it once (sharded
// like Analyze, abortable through ctx), then re-evaluate the
// calibrated model under the full what-if portfolio — perfect
// coalescing, conflict-free shared memory, no divergence, ideal
// stage overlap, and an occupancy mini-sweep — returning the ranked,
// quantified headroom per scenario (the paper's §4 analysis as a
// service). The scenarios are pure stat transforms over that single
// run, so Advise costs one simulation regardless of portfolio size;
// the request's Measure and SkipVerify flags are ignored (advice
// never verifies or times the device simulator — pair it with
// Analyze on a variant kernel to compare predicted headroom against
// a measured sibling).
func (a *Analyzer) Advise(ctx context.Context, req Request) (*Advice, error) {
	// Advice needs only the statistics, so the verification closure
	// is always dropped.
	r, release, err := a.simulate(ctx, &req, true)
	if err != nil {
		return nil, err
	}
	defer release()
	_, modelDone := r.phase(ctx, "model")
	rep, err := advise.Run(r.cal, r.w.Launch, r.stats, &advise.Options{Parallelism: a.workers(req)})
	modelDone()
	if err != nil {
		return nil, err
	}
	return newAdvice(req, a.dev, r.w, rep), nil
}

// Measurement is the device simulator's timing of one kernel, with
// no model involved (and so no calibration cost) — what an
// architecture sweep compares across device variants. Size and Seed
// echo the request after normalization.
type Measurement struct {
	Kernel   string  `json:"kernel"`
	Device   string  `json:"device"`
	Size     int     `json:"size"`
	Seed     int64   `json:"seed"`
	Seconds  float64 `json:"seconds"`
	Dominant string  `json:"dominant"`
}

// Measure runs only the device simulator for the request's kernel.
// It shares the request prelude with Analyze and Advise — identical
// validation, error wrapping, context handling and admission — but
// never waits for (or triggers) the model calibration: timing-only
// sweeps stay calibration-free.
func (a *Analyzer) Measure(ctx context.Context, req Request) (*Measurement, error) {
	// The timing simulator never reads the verification closure.
	r, release, err := a.prelude(ctx, &req, false, true)
	if err != nil {
		return nil, err
	}
	defer release()
	measCtx, measDone := r.phase(ctx, "measure")
	meas, err := device.RunContext(measCtx, a.dev, r.w.Launch, r.w.Mem)
	measDone()
	if err != nil {
		return nil, err
	}
	return &Measurement{
		Kernel:   req.Kernel,
		Device:   a.dev.Name,
		Size:     req.Size,
		Seed:     req.Seed,
		Seconds:  meas.Seconds,
		Dominant: meas.DominantComponent(),
	}, nil
}

// AnalyzeBatch analyzes many requests concurrently, amortizing the
// session's calibration across all of them. results[i] answers
// reqs[i]; a request that fails leaves a nil entry and its error —
// wrapped with the request's index and kernel name, so a joined
// multi-error still identifies its sources — joined into the
// returned error in request order. errors.Is still matches the
// underlying condition (ErrUnknownKernel, ErrInvalidRequest, context
// errors) through the wrapping. One failing request does not cancel
// its siblings — only ctx does.
func (a *Analyzer) AnalyzeBatch(ctx context.Context, reqs []Request) ([]*Result, error) {
	return analyzeBatch(ctx, a.opt.BatchConcurrency, reqs, a.Analyze)
}

// forEachLimit runs fn(i) for every i in [0, n) on goroutines, at
// most limit (≤0 = GOMAXPROCS) at a time, and waits for all of them.
func forEachLimit(n, limit int, fn func(i int)) {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit > n {
		limit = n
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// analyzeBatch is the one batch fan-out both Analyzer.AnalyzeBatch
// and Fleet.AnalyzeBatch delegate to, so concurrency limiting and
// error attribution cannot drift between the two front doors.
func analyzeBatch(ctx context.Context, limit int, reqs []Request,
	analyze func(context.Context, Request) (*Result, error)) ([]*Result, error) {
	results := make([]*Result, len(reqs))
	errs := make([]error, len(reqs))
	forEachLimit(len(reqs), limit, func(i int) {
		results[i], errs[i] = analyze(ctx, reqs[i])
		if errs[i] != nil {
			errs[i] = fmt.Errorf("request %d (kernel %q): %w", i, reqs[i].Kernel, errs[i])
		}
	})
	return results, errors.Join(errs...)
}
