module gpuperf

go 1.24
