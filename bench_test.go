// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (plus the architectural ablations), each
// regenerating its artifact through internal/experiments. Run
//
//	go test -bench=. -benchmem
//
// for the small-scale sweep, or
//
//	go test -bench=. -benchtime=1x -tags=large
//
// with cmd/experiments -large for paper-scale workloads. Reported
// custom metrics carry each experiment's headline number so bench
// output doubles as a results log.
package gpuperf

import (
	"strconv"
	"sync"
	"testing"

	"gpuperf/internal/experiments"
)

var (
	benchMu    sync.Mutex
	benchSuite *experiments.Suite
)

func suite() *experiments.Suite {
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchSuite == nil {
		benchSuite = experiments.New(experiments.Small)
	}
	return benchSuite
}

// benchTable runs one experiment per iteration and reports a chosen
// cell as a metric.
func benchTable(b *testing.B, run func() (*experiments.Table, error), metricRow, metricCol int, metric string) {
	b.Helper()
	s := suite()
	// Warm the calibration outside the timed region.
	if _, err := s.Calibration(); err != nil {
		b.Fatal(err)
	}
	if _, err := s.SliceCalibration(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tb, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = tb
	}
	b.StopTimer()
	if metric != "" && last != nil {
		if v, err := strconv.ParseFloat(last.Cell(metricRow, metricCol), 64); err == nil {
			b.ReportMetric(v, metric)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (instruction cost classes);
// metric: Type II peak Ginstr/s.
func BenchmarkTable1(b *testing.B) { benchTable(b, suite().Table1, 1, 3, "typeII-peak-Ginstr/s") }

// BenchmarkFigure2Instr regenerates Fig. 2 left; metric: Type II
// throughput at the largest warp count.
func BenchmarkFigure2Instr(b *testing.B) {
	benchTable(b, suite().Figure2Instr, 15, 2, "typeII-sat-Ginstr/s")
}

// BenchmarkFigure2Shared regenerates Fig. 2 right; metric: saturated
// shared-memory bandwidth.
func BenchmarkFigure2Shared(b *testing.B) {
	benchTable(b, suite().Figure2Shared, 15, 1, "smem-sat-GB/s")
}

// BenchmarkFigure3Global regenerates Fig. 3; metric: bandwidth of
// the first configuration at the largest block count.
func BenchmarkFigure3Global(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) {
		tb, err := suite().Figure3Global()
		return tb, err
	}, 14, 1, "gmem-56blk-GB/s")
}

// BenchmarkTable2 regenerates Table 2 (occupancy); metric: 32×32
// active warps (paper: 6).
func BenchmarkTable2(b *testing.B) { benchTable(b, suite().Table2, 2, 6, "warps-32x32") }

// BenchmarkFigure4a regenerates Fig. 4a (matmul dynamic statistics);
// metric: 16×16 computational density.
func BenchmarkFigure4a(b *testing.B) { benchTable(b, suite().Figure4a, 1, 5, "density-16x16") }

// BenchmarkFigure4b regenerates Fig. 4b (matmul breakdown); metric:
// 16×16 measured ms.
func BenchmarkFigure4b(b *testing.B) { benchTable(b, suite().Figure4b, 1, 5, "measured-16x16-ms") }

// BenchmarkFigure6a regenerates Fig. 6a (CR per-step breakdown);
// metric: step 2 shared-memory ms.
func BenchmarkFigure6a(b *testing.B) { benchTable(b, suite().Figure6a, 2, 2, "cr-step2-shared-ms") }

// BenchmarkFigure6b regenerates Fig. 6b (CR-NBC breakdown); metric:
// step 2 instruction ms.
func BenchmarkFigure6b(b *testing.B) { benchTable(b, suite().Figure6b, 2, 3, "nbc-step2-instr-ms") }

// BenchmarkFigure7a regenerates Fig. 7a (per-step shared-memory
// bandwidth); metric: step 1 GB/s (paper: 1029).
func BenchmarkFigure7a(b *testing.B) { benchTable(b, suite().Figure7a, 0, 2, "step1-GB/s") }

// BenchmarkFigure7b regenerates Fig. 7b (transactions ± conflicts);
// metric: step 1 conflict factor.
func BenchmarkFigure7b(b *testing.B) { benchTable(b, suite().Figure7b, 0, 3, "step1-conflict-factor") }

// BenchmarkFigure8 regenerates Fig. 8 (CR vs CR-NBC totals); metric:
// CR measured ms.
func BenchmarkFigure8(b *testing.B) { benchTable(b, suite().Figure8, 0, 1, "cr-measured-ms") }

// BenchmarkFigure11a regenerates Fig. 11a (bytes per entry); metric:
// BELL+IMIV vector bytes at 32 B granularity.
func BenchmarkFigure11a(b *testing.B) { benchTable(b, suite().Figure11a, 6, 4, "imiv-vector-B/entry") }

// BenchmarkFigure11b regenerates Fig. 11b (SpMV breakdown); metric:
// BELL+IMIV measured ms.
func BenchmarkFigure11b(b *testing.B) { benchTable(b, suite().Figure11b, 2, 5, "imiv-measured-ms") }

// BenchmarkFigure12 regenerates Fig. 12 (GFLOPS ± texture cache);
// metric: BELL+IMIV+Cache GFLOPS.
func BenchmarkFigure12(b *testing.B) { benchTable(b, suite().Figure12, 5, 1, "imiv-cache-GFLOPS") }

// BenchmarkAblationMaxBlocks measures the 8→16 resident-block
// ablation; metric: 16×16 speedup.
func BenchmarkAblationMaxBlocks(b *testing.B) {
	benchTable(b, suite().AblationMaxBlocks, 1, 3, "speedup-16x16")
}

// BenchmarkAblationBigSM measures the 3× register/smem ablation;
// metric: 32×32 speedup.
func BenchmarkAblationBigSM(b *testing.B) {
	benchTable(b, suite().AblationBigSM, 0, 3, "speedup-32x32")
}

// BenchmarkAblationPrimeBanks measures the 17-bank ablation; metric:
// plain-CR speedup.
func BenchmarkAblationPrimeBanks(b *testing.B) {
	benchTable(b, suite().AblationPrimeBanks, 0, 3, "cr-speedup")
}

// BenchmarkAblationSegment16 measures the 16-byte-transaction
// ablation; metric: ELL speedup.
func BenchmarkAblationSegment16(b *testing.B) {
	benchTable(b, suite().AblationSegment16, 0, 3, "ell-speedup")
}

// BenchmarkAblationEarlyRelease measures the early-resource-release
// ablation; metric: CR speedup.
func BenchmarkAblationEarlyRelease(b *testing.B) {
	benchTable(b, suite().AblationEarlyRelease, 0, 3, "cr-speedup")
}

// BenchmarkExtensionMatrixStructures sweeps the SpMV formats over
// banded / QCD-like / random matrices; metric: banded IMIV vector
// bytes per entry.
func BenchmarkExtensionMatrixStructures(b *testing.B) {
	benchTable(b, suite().ExtensionMatrixStructures, 1, 2, "banded-imiv-vec-B/entry")
}
