package gpuperf

import "gpuperf/internal/experiments"

// ExperimentTable is one experiment's output: a titled grid of
// labelled series with Fprint/String/Chart renderers.
type ExperimentTable = experiments.Table

// ExperimentOptions tunes an evaluation-suite run.
type ExperimentOptions struct {
	// Large runs paper-scale workloads (minutes); the default small
	// scale finishes in under a minute.
	Large bool
	// Parallelism is the functional-simulation worker count per
	// launch (0 = all host cores, 1 = serial). Results are identical
	// at any setting.
	Parallelism int
}

func newSuite(opt ExperimentOptions) *experiments.Suite {
	scale := experiments.Small
	if opt.Large {
		scale = experiments.Large
	}
	s := experiments.New(scale)
	s.Parallelism = opt.Parallelism
	return s
}

// RunExperiments regenerates every table and figure of the paper's
// evaluation section plus the architectural-improvement ablations.
// On error the tables completed so far are returned alongside it.
func RunExperiments(opt ExperimentOptions) ([]*ExperimentTable, error) {
	return newSuite(opt).All()
}

// MicrobenchCurve pairs one §4 microbenchmark table with the column
// to chart when rendering it as a saturation curve.
type MicrobenchCurve struct {
	Table       *ExperimentTable
	ChartColumn int
}

// MicrobenchCurves regenerates the paper's microbenchmark figures:
// the Table 1 instruction classes, instruction throughput and
// shared-memory bandwidth versus warps per SM (Fig. 2), and the
// synthetic global-memory bandwidth sweep (Fig. 3).
func MicrobenchCurves(opt ExperimentOptions) ([]MicrobenchCurve, error) {
	s := newSuite(opt)
	type curve struct {
		run func() (*ExperimentTable, error)
		col int
	}
	var out []MicrobenchCurve
	for _, c := range []curve{
		{s.Table1, 3}, {s.Figure2Instr, 2}, {s.Figure2Shared, 1}, {s.Figure3Global, 1},
	} {
		tb, err := c.run()
		if err != nil {
			return out, err
		}
		out = append(out, MicrobenchCurve{Table: tb, ChartColumn: c.col})
	}
	return out, nil
}
