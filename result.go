package gpuperf

import (
	"fmt"
	"strings"

	"gpuperf/internal/advise"
	"gpuperf/internal/barra"
	"gpuperf/internal/model"
)

// Result is the fully serializable output of one analysis: the
// paper's Fig. 1 verdict (per-component times, bottleneck, causes,
// per-stage breakdown) plus the dynamic-statistics summary it was
// derived from and, when requested, the device simulator's measured
// time. Every field round-trips through JSON unchanged — the HTTP
// service returns this struct verbatim.
type Result struct {
	// Kernel, Size and Seed echo the request; Device names the
	// analyzed configuration; Grid and Block its launch geometry.
	Kernel string `json:"kernel"`
	Device string `json:"device"`
	Size   int    `json:"size"`
	Seed   int64  `json:"seed"`
	Grid   int    `json:"grid"`
	Block  int    `json:"block"`

	// PredictedSeconds is the model's execution-time prediction;
	// UpperBoundSeconds the fully-serial bound (see the paper's
	// future-work item 4 — the real time lies between them).
	PredictedSeconds  float64 `json:"predicted_seconds"`
	UpperBoundSeconds float64 `json:"upper_bound_seconds"`
	// Components holds whole-program per-component times.
	Components ComponentTimes `json:"components"`
	// Bottleneck is the slowest component; NextBottleneck what would
	// replace it if it were optimized away.
	Bottleneck     string `json:"bottleneck"`
	NextBottleneck string `json:"next_bottleneck"`
	// Causes lists the paper's §3 likely causes for the bottleneck.
	Causes []string `json:"causes"`
	// Serialized is true when one resident block per SM forces
	// barrier-delimited stages to run back to back.
	Serialized bool `json:"serialized"`
	// Stages is the per-stage breakdown (one entry per
	// barrier-delimited stage).
	Stages []StageResult `json:"stages"`

	Occupancy   OccupancySummary `json:"occupancy"`
	Diagnostics Diagnostics      `json:"diagnostics"`
	Stats       StatsSummary     `json:"stats"`

	// GFLOPS is the predicted achieved rate for kernels with a known
	// useful-flop count (0 otherwise).
	GFLOPS float64 `json:"gflops,omitempty"`
	// MaxAbsError is the worst absolute error of the functional run
	// against the CPU reference; nil when the kernel has no checkable
	// output.
	MaxAbsError *float64 `json:"max_abs_error,omitempty"`
	// VerifyError explains why the functional output was not checked
	// when verification was impossible rather than skipped by choice —
	// user-submitted kernels have no CPU reference, so their results
	// always carry "unverified: user-submitted".
	VerifyError string `json:"verify_error,omitempty"`
	// MeasuredSeconds is the device simulator's time (present only
	// when the request set Measure); PredictionError is
	// |predicted−measured|/measured, the paper's accuracy metric.
	MeasuredSeconds float64 `json:"measured_seconds,omitempty"`
	PredictionError float64 `json:"prediction_error,omitempty"`
	// MeasuredDominant names the component whose servers the device
	// simulator saw busiest (only with Measure).
	MeasuredDominant string `json:"measured_dominant,omitempty"`
}

// ComponentTimes are the three modeled execution times in seconds.
type ComponentTimes struct {
	InstructionSeconds float64 `json:"instruction_seconds"`
	SharedSeconds      float64 `json:"shared_seconds"`
	GlobalSeconds      float64 `json:"global_seconds"`
}

// StageResult is the model's verdict for one barrier-delimited stage.
type StageResult struct {
	Index              int     `json:"index"`
	InstructionSeconds float64 `json:"instruction_seconds"`
	SharedSeconds      float64 `json:"shared_seconds"`
	GlobalSeconds      float64 `json:"global_seconds"`
	Bottleneck         string  `json:"bottleneck"`
	// Warps is the warp-level parallelism assumed for the stage.
	Warps int `json:"warps"`
}

// OccupancySummary reports the resident-block computation.
type OccupancySummary struct {
	Blocks        int    `json:"blocks"`
	WarpsPerBlock int    `json:"warps_per_block"`
	ActiveWarps   int    `json:"active_warps"`
	Limiter       string `json:"limiter"`
}

// Diagnostics are the paper's Fig. 1 outputs guiding optimization,
// plus the simulator's own effectiveness counters.
type Diagnostics struct {
	WarpsPerSM           int     `json:"warps_per_sm"`
	Density              float64 `json:"density"`
	CoalescingEfficiency float64 `json:"coalescing_efficiency"`
	BankConflictFactor   float64 `json:"bank_conflict_factor"`
	TransPerThread       int     `json:"trans_per_thread"`
	// BlocksSimulated/BlocksReplayed split this run's blocks by how
	// the functional engine derived their statistics (see
	// barra.EngineStats); BatchedRuns/BatchedInstrs report its batched
	// warp stepping. All zero when replay was bypassed (NoReplay, a
	// session-level disable, or an irregular launch shape).
	BlocksSimulated int64 `json:"blocks_simulated"`
	BlocksReplayed  int64 `json:"blocks_replayed"`
	BatchedRuns     int64 `json:"batched_runs"`
	BatchedInstrs   int64 `json:"batched_instrs"`
	// PhaseSeconds breaks the request's wall-clock down by phase
	// (calibration wait, admission wait, build, engine, model, verify,
	// measure), rounded to microseconds. Unlike every other field it
	// is timing, not simulation output: two identical requests carry
	// identical stats but different phase timings, and a cached HIT
	// replays the original computation's breakdown verbatim.
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
}

// StatsSummary condenses the functional run's dynamic statistics.
type StatsSummary struct {
	WarpInstrs         int64 `json:"warp_instrs"`
	FMADs              int64 `json:"fmads"`
	SharedAccesses     int64 `json:"shared_accesses"`
	SharedTx           int64 `json:"shared_tx"`
	SharedBytes        int64 `json:"shared_bytes"`
	GlobalTransactions int64 `json:"global_transactions"`
	GlobalBytes        int64 `json:"global_bytes"`
	GlobalUsefulBytes  int64 `json:"global_useful_bytes"`
	Barriers           int   `json:"barriers"`
	// Regions attributes global traffic to the kernel's named arrays
	// (SpMV's matrix/colidx/vector split of Fig. 11a), at the
	// device's native transaction granularity.
	Regions map[string]RegionTraffic `json:"regions,omitempty"`
}

// RegionTraffic is one named array's share of global traffic.
type RegionTraffic struct {
	Transactions int64 `json:"transactions"`
	Bytes        int64 `json:"bytes"`
	UsefulBytes  int64 `json:"useful_bytes"`
}

// newResult folds the model estimate and dynamic statistics into the
// serializable form.
func newResult(req Request, dev Device, w *Workload, est *model.Estimate, stats *barra.Stats) *Result {
	r := &Result{
		Kernel: req.Kernel,
		Device: dev.Name,
		Size:   req.Size,
		Seed:   req.Seed,
		Grid:   w.Launch.Grid,
		Block:  w.Launch.Block,

		PredictedSeconds:  est.TotalSeconds,
		UpperBoundSeconds: est.UpperBoundSeconds,
		Components: ComponentTimes{
			InstructionSeconds: est.Component[model.CompInstruction],
			SharedSeconds:      est.Component[model.CompShared],
			GlobalSeconds:      est.Component[model.CompGlobal],
		},
		Bottleneck:     est.Bottleneck.String(),
		NextBottleneck: est.NextBottleneck.String(),
		Causes:         est.Causes(),
		Serialized:     est.Serialized,

		Occupancy: OccupancySummary{
			Blocks:        est.Occupancy.Blocks,
			WarpsPerBlock: est.Occupancy.WarpsPerBlock,
			ActiveWarps:   est.Occupancy.ActiveWarps,
			Limiter:       est.Occupancy.Limiter,
		},
		Diagnostics: Diagnostics{
			WarpsPerSM:           est.WarpsPerSM,
			Density:              est.Density,
			CoalescingEfficiency: est.CoalescingEfficiency,
			BankConflictFactor:   est.BankConflictFactor,
			TransPerThread:       est.TransPerThread,
			BlocksSimulated:      stats.Engine.BlocksSimulated,
			BlocksReplayed:       stats.Engine.BlocksReplayed,
			BatchedRuns:          stats.Engine.BatchedRuns,
			BatchedInstrs:        stats.Engine.BatchedInstrs,
		},
		Stats: StatsSummary{
			WarpInstrs:         stats.Total.WarpInstrs,
			FMADs:              stats.Total.FMADs,
			SharedAccesses:     stats.Total.SharedAccesses,
			SharedTx:           stats.Total.SharedTx,
			SharedBytes:        stats.Total.SharedBytes,
			GlobalTransactions: stats.Total.Global.Transactions,
			GlobalBytes:        stats.Total.Global.Bytes,
			GlobalUsefulBytes:  stats.Total.GlobalUsefulBytes,
			Barriers:           stats.Barriers,
		},
	}
	for _, st := range est.Stages {
		r.Stages = append(r.Stages, StageResult{
			Index:              st.Index,
			InstructionSeconds: st.Times[model.CompInstruction],
			SharedSeconds:      st.Times[model.CompShared],
			GlobalSeconds:      st.Times[model.CompGlobal],
			Bottleneck:         st.Bottleneck.String(),
			Warps:              st.Warps,
		})
	}
	if len(stats.RegionTraffic) > 0 {
		native := dev.MinSegmentBytes
		r.Stats.Regions = map[string]RegionTraffic{}
		for name, perSeg := range stats.RegionTraffic { //gpuperf:unordered map-to-map copy; the JSON encoder sorts Regions' keys
			t := perSeg[native]
			r.Stats.Regions[name] = RegionTraffic{
				Transactions: t.Transactions,
				Bytes:        t.Bytes,
				UsefulBytes:  stats.RegionUseful[name],
			}
		}
	}
	if w.FLOPs > 0 {
		r.GFLOPS = est.GFLOPS(w.FLOPs)
	}
	return r
}

// Advice is the fully serializable output of one advisor run: the
// factual baseline plus the ranked counterfactual scenarios — the
// paper's §4 "how much would each optimization buy" analysis as a
// wire type. Like Result, every field round-trips through JSON
// unchanged; the HTTP service returns this struct verbatim.
type Advice struct {
	// Kernel, Size and Seed echo the request; Device names the
	// analyzed configuration; Grid and Block its launch geometry.
	Kernel string `json:"kernel"`
	Device string `json:"device"`
	Size   int    `json:"size"`
	Seed   int64  `json:"seed"`
	Grid   int    `json:"grid"`
	Block  int    `json:"block"`

	// BaselineSeconds is the factual model prediction every scenario
	// is measured against; Bottleneck its whole-program verdict.
	BaselineSeconds float64 `json:"baseline_seconds"`
	Bottleneck      string  `json:"bottleneck"`

	// Scenarios holds the full counterfactual portfolio, ranked by
	// speedup (descending, ties broken by scenario key — the ranking
	// is deterministic at any parallelism).
	Scenarios []ScenarioAdvice `json:"scenarios"`
	// Top is the scenario key of the highest-ranked entry with more
	// than 1% predicted headroom ("" when the kernel is already
	// within 1% of every counterfactual).
	Top string `json:"top,omitempty"`
}

// ScenarioAdvice is one counterfactual's verdict on the wire.
type ScenarioAdvice struct {
	// Scenario is the stable key ("perfect-coalescing",
	// "conflict-free-shared", "no-divergence", "ideal-overlap",
	// "raise-occupancy"); a registry variant whose Optimization field
	// names it is the measurable counterpart.
	Scenario string `json:"scenario"`
	// Title is a short human heading.
	Title string `json:"title"`
	// PredictedSeconds is the model's time under the counterfactual;
	// Speedup the baseline divided by it (1.0 = no headroom).
	PredictedSeconds float64 `json:"predicted_seconds"`
	Speedup          float64 `json:"speedup"`
	// Components are the counterfactual's per-component times.
	Components ComponentTimes `json:"components"`
	// Explanation grounds the verdict in the run's statistics, in the
	// style of the paper's §4 walk-throughs.
	Explanation string `json:"explanation"`
	// TargetBlocks is the best resident-block count found by the
	// occupancy mini-sweep (raise-occupancy only, 0 otherwise).
	TargetBlocks int `json:"target_blocks,omitempty"`
}

// adviceTopTolerance is the headroom below which advice is noise.
const adviceTopTolerance = 0.01

// newAdvice folds the advisor's report into the serializable form.
func newAdvice(req Request, dev Device, w *Workload, rep *advise.Report) *Advice {
	a := &Advice{
		Kernel: req.Kernel,
		Device: dev.Name,
		Size:   req.Size,
		Seed:   req.Seed,
		Grid:   w.Launch.Grid,
		Block:  w.Launch.Block,

		BaselineSeconds: rep.Baseline.TotalSeconds,
		Bottleneck:      rep.Baseline.Bottleneck.String(),
	}
	for _, s := range rep.Scenarios {
		a.Scenarios = append(a.Scenarios, ScenarioAdvice{
			Scenario:         s.Scenario,
			Title:            s.Title,
			PredictedSeconds: s.PredictedSeconds,
			Speedup:          s.Speedup,
			Components: ComponentTimes{
				InstructionSeconds: s.Estimate.Component[model.CompInstruction],
				SharedSeconds:      s.Estimate.Component[model.CompShared],
				GlobalSeconds:      s.Estimate.Component[model.CompGlobal],
			},
			Explanation:  s.Explanation,
			TargetBlocks: s.TargetBlocks,
		})
	}
	if top := rep.Top(adviceTopTolerance); top != nil {
		a.Top = top.Scenario
	}
	return a
}

// Report renders the advice as the human-readable ranking the
// gpuperf -advise command prints.
func (a *Advice) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel: %s on %s, %d blocks x %d threads (size %d, seed %d)\n",
		a.Kernel, a.Device, a.Grid, a.Block, a.Size, a.Seed)
	fmt.Fprintf(&b, "baseline prediction: %.6g ms, bottleneck: %s\n",
		a.BaselineSeconds*1e3, a.Bottleneck)
	fmt.Fprintf(&b, "counterfactual scenarios (ranked by predicted speedup):\n")
	for i, s := range a.Scenarios {
		marker := " "
		if s.Scenario == a.Top {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s %d. %s: %.2fx (%.6g ms)\n", marker, i+1, s.Title, s.Speedup, s.PredictedSeconds*1e3)
		fmt.Fprintf(&b, "     %s\n", s.Explanation)
	}
	if a.Top == "" {
		fmt.Fprintf(&b, "no scenario promises more than %.0f%% — the kernel is near its modeled headroom\n",
			adviceTopTolerance*100)
	}
	return b.String()
}

// Report renders the result as the human-readable analysis the
// gpuperf command prints — the paper Fig. 1 workflow outputs.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel: %s on %s, %d blocks x %d threads (size %d, seed %d)\n",
		r.Kernel, r.Device, r.Grid, r.Block, r.Size, r.Seed)
	fmt.Fprintf(&b, "predicted time: %.6g ms (serial upper bound %.6g ms)\n",
		r.PredictedSeconds*1e3, r.UpperBoundSeconds*1e3)
	fmt.Fprintf(&b, "component times: instruction %.6g ms, shared %.6g ms, global %.6g ms\n",
		r.Components.InstructionSeconds*1e3, r.Components.SharedSeconds*1e3, r.Components.GlobalSeconds*1e3)
	fmt.Fprintf(&b, "bottleneck: %s (next: %s)\n", r.Bottleneck, r.NextBottleneck)
	fmt.Fprintf(&b, "occupancy: %d blocks, %d warps/SM (limited by %s)\n",
		r.Occupancy.Blocks, r.Occupancy.ActiveWarps, r.Occupancy.Limiter)
	fmt.Fprintf(&b, "computational density: %.2f\n", r.Diagnostics.Density)
	fmt.Fprintf(&b, "coalescing efficiency: %.2f\n", r.Diagnostics.CoalescingEfficiency)
	fmt.Fprintf(&b, "bank-conflict factor: %.2f\n", r.Diagnostics.BankConflictFactor)
	for _, c := range r.Causes {
		fmt.Fprintf(&b, "cause: %s\n", c)
	}
	if r.GFLOPS > 0 {
		fmt.Fprintf(&b, "predicted rate: %.4g GFLOPS\n", r.GFLOPS)
	}
	if r.MaxAbsError != nil {
		fmt.Fprintf(&b, "verified against CPU reference (max |error| %.2g)\n", *r.MaxAbsError)
	}
	if r.Serialized {
		fmt.Fprintf(&b, "stages (serialized; one block per SM):\n")
	} else {
		fmt.Fprintf(&b, "stages (overlapped across blocks):\n")
	}
	for _, st := range r.Stages {
		fmt.Fprintf(&b, "  stage %d: instr %.6g ms, shared %.6g ms, global %.6g ms — %s (%d warps)\n",
			st.Index, st.InstructionSeconds*1e3, st.SharedSeconds*1e3,
			st.GlobalSeconds*1e3, st.Bottleneck, st.Warps)
	}
	if r.MeasuredSeconds > 0 {
		fmt.Fprintf(&b, "measured (device simulator): %.6g ms, dominant component %s\n",
			r.MeasuredSeconds*1e3, r.MeasuredDominant)
		fmt.Fprintf(&b, "prediction error: %.1f%%\n", r.PredictionError*100)
	}
	return b.String()
}
