// Package gpuperf is a reproduction of "A Quantitative Performance
// Analysis Model for GPU Architectures" (Zhang & Owens, HPCA 2011)
// as a pure-Go library.
//
// The paper's workflow — native-ISA kernels, a functional simulator
// collecting dynamic statistics, microbenchmark-calibrated
// throughput curves, and a three-component performance model that
// identifies bottlenecks — lives under internal/ (one package per
// subsystem; see DESIGN.md for the inventory). Executables are in
// cmd/, runnable case studies in examples/, and the benchmark
// harness regenerating every paper table and figure in
// bench_test.go next to this file.
package gpuperf
