// Package gpuperf is a reproduction of "A Quantitative Performance
// Analysis Model for GPU Architectures" (Zhang & Owens, HPCA 2011)
// as a pure-Go library, fronted by a stable public API.
//
// The root package is the one supported way to use the system. Its
// pieces mirror the paper's Fig. 1 workflow:
//
//   - A Registry names the built-in case-study kernels (dense
//     matmul, cyclic reduction, SpMV) and builds deterministic
//     problem instances from (size, seed) parameters.
//   - An Analyzer is a reusable session: it owns a Device
//     configuration and its lazily-built, cached calibration, runs
//     the functional simulation (sharded across workers, abortable
//     via context), applies the three-component model, and returns a
//     fully JSON-serializable Result with the bottleneck verdict,
//     causes, per-stage breakdown and dynamic-statistics summary.
//     AnalyzeBatch amortizes the calibration across many requests.
//   - NewHandler exposes the session over HTTP (cmd/gpuperfd):
//     POST /v1/analyze, GET /v1/kernels, GET /healthz.
//   - RunExperiments and MicrobenchCurves regenerate the paper's
//     evaluation tables and microbenchmark figures; AssembleText,
//     DisassembleContainer, RewriteKernel and Microbenchmark are the
//     binary-toolchain front door.
//
// The paper's machinery — native-ISA kernels, the barra functional
// simulator, microbenchmark-calibrated throughput curves, the
// performance model — lives under internal/ (one package per
// subsystem; see DESIGN.md) and is free to churn behind this facade.
// Executables are in cmd/, runnable case studies in examples/, and
// the benchmark harness regenerating every paper table and figure in
// bench_test.go next to this file.
package gpuperf
