// Package gpuperf is a reproduction of "A Quantitative Performance
// Analysis Model for GPU Architectures" (Zhang & Owens, HPCA 2011)
// as a pure-Go library, fronted by a stable public API.
//
// The root package is the one supported way to use the system. Its
// pieces mirror the paper's Fig. 1 workflow:
//
//   - A Registry names the built-in case-study kernels (dense
//     matmul, cyclic reduction, SpMV) and builds deterministic
//     problem instances from (size, seed) parameters.
//   - A DeviceCatalog names immutable device profiles — the stock
//     GTX 285, its cluster slices, the paper's §5 study variants —
//     each with a canonical hardware fingerprint that keys the
//     on-disk calibration cache.
//   - An Analyzer is a reusable single-device session: it owns a
//     Device configuration and its lazily-built, cached calibration,
//     runs the functional simulation (sharded across workers,
//     abortable via context), applies the three-component model, and
//     returns a fully JSON-serializable Result with the bottleneck
//     verdict, causes, per-stage breakdown and dynamic-statistics
//     summary. AnalyzeBatch amortizes the calibration across many
//     requests.
//   - A Fleet routes requests to one session per catalog entry
//     behind a shared admission limit and calibration cache
//     directory; Fleet.Compare ranks one kernel across a device set
//     (the architect question, answered in one call).
//   - NewHandler exposes a fleet over HTTP (cmd/gpuperfd):
//     POST /v1/analyze, /v1/advise, /v1/measure, /v1/compare,
//     GET /v1/kernels, /v1/devices, /healthz.
//   - RunExperiments and MicrobenchCurves regenerate the paper's
//     evaluation tables and microbenchmark figures; AssembleText,
//     DisassembleContainer, RewriteKernel and Microbenchmark are the
//     binary-toolchain front door.
//
// The paper's machinery — native-ISA kernels, the barra functional
// simulator, microbenchmark-calibrated throughput curves, the
// performance model — lives under internal/ (one package per
// subsystem; see DESIGN.md) and is free to churn behind this facade.
// Executables are in cmd/, runnable case studies in examples/, and
// the benchmark harness regenerating every paper table and figure in
// bench_test.go next to this file.
package gpuperf
